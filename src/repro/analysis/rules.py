"""The codebase-specific invariant rules.

Each rule guards one invariant the differential test suites otherwise
only catch dynamically:

* ``determinism-random`` — all randomness flows through
  :mod:`repro.utils.rng`; no ``random`` / ``numpy.random`` anywhere else.
* ``determinism-wallclock`` — no wall-clock reads inside the engine or
  scenario observation paths.
* ``backend-parity`` — every numpy kernel has a pure-Python counterpart
  with a matching signature, discovered from the dispatch AST.
* ``config-hygiene`` — no import-time ``os.environ`` reads (PR 4's bug
  class, pinned forever).
* ``generator-purity`` — scenario generators are pure functions of
  ``(family, seed, index)``: no module-global mutation, no
  non-``StreamRNG`` randomness.
* ``export-integrity`` — every ``repro.*`` package ``__all__`` is a
  literal that names only defined symbols and covers the public facade.
* ``fault-hygiene`` — no bare ``except:`` and no silently swallowed
  ``except Exception:`` inside ``repro.engine`` / ``repro.faults``; the
  resilience lanes must observe every failure they handle.
* ``service-hygiene`` — no blocking calls (``time.sleep``, synchronous
  file IO, ``subprocess``) inside ``repro.service`` coroutine
  functions; the asyncio front end must never stall the event loop.

Rules are registered on import (see
:func:`repro.analysis.core.register_rule`); the driver and the CLI pick
them up from the registry.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.core import ModuleInfo, Rule, Violation, register_rule

__all__ = [
    "DeterminismRandomRule",
    "DeterminismWallclockRule",
    "BackendParityRule",
    "ConfigHygieneRule",
    "GeneratorPurityRule",
    "ExportIntegrityRule",
    "FaultHygieneRule",
    "ServiceHygieneRule",
]


def _is_type_checking_test(test: ast.expr) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _runtime_walk(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` minus the bodies of ``if TYPE_CHECKING:`` blocks.

    Typing-only imports never execute, so they cannot break runtime
    determinism; rules that police imports use this walker to permit
    the ``TYPE_CHECKING`` idiom.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, ast.If) and _is_type_checking_test(
                current.test):
            stack.extend(current.orelse)
            continue
        stack.extend(ast.iter_child_nodes(current))


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Names the module binds to the numpy module (``numpy``, ``np``...)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy" or item.name.startswith("numpy."):
                    aliases.add((item.asname or item.name).split(".")[0])
    return aliases


# ----------------------------------------------------------------------
# Rule: determinism-random
# ----------------------------------------------------------------------
@register_rule
class DeterminismRandomRule(Rule):
    id = "determinism-random"
    summary = ("randomness outside repro.utils.rng: no 'random' or "
               "'numpy.random' imports/uses elsewhere")
    explain = """\
All randomness must flow through repro.utils.rng.

The differential oracle replays every scenario across {numpy, python}
x {1, 2 workers} x {full, incremental} engine paths and demands
bit-identical observations.  That only holds because every random draw
is a counter-based StreamRNG value — a pure function of
(seed, stream, slot, draw) — or a random.Random seeded through
make_rng/spawn_rng.  A stray `import random` or `np.random.*` call
reintroduces hidden sequential state: results start depending on call
order, window chunking, and which backend ran first.

Complies: from repro.utils.rng import StreamRNG, make_rng, make_np_rng
Violates: import random; random.random(); np.random.default_rng(...)

`import random` under `if TYPE_CHECKING:` is permitted — annotations
such as `random.Random` never execute at runtime.  Only
repro/utils/rng.py itself may touch the underlying modules.
"""

    ALLOWED_MODULES = ("repro.utils.rng",)

    def check(self, info: ModuleInfo) -> Iterator[Violation]:
        if info.module in self.ALLOWED_MODULES:
            return
        numpy_names = _numpy_aliases(info.tree)
        for node in _runtime_walk(info.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    root = item.name.split(".")[0]
                    if root == "random":
                        yield self.violation(info,
                            node, "import of the 'random' module outside "
                            "repro.utils.rng; draw through StreamRNG / "
                            "make_rng instead (typing-only imports go "
                            "under 'if TYPE_CHECKING:')")
                    elif item.name.startswith("numpy.random"):
                        yield self.violation(info,
                            node, "import of numpy.random outside "
                            "repro.utils.rng; seed through "
                            "repro.utils.rng.make_np_rng instead")
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("random."):
                    yield self.violation(info,
                        node, "from-import of the 'random' module outside "
                        "repro.utils.rng; draw through StreamRNG / "
                        "make_rng instead")
                elif module.startswith("numpy.random") or (
                        module == "numpy"
                        and any(item.name == "random"
                                for item in node.names)):
                    yield self.violation(info,
                        node, "from-import of numpy.random outside "
                        "repro.utils.rng; seed through "
                        "repro.utils.rng.make_np_rng instead")
            elif isinstance(node, ast.Attribute):
                if (node.attr == "random"
                        and isinstance(node.value, ast.Name)
                        and node.value.id in numpy_names):
                    yield self.violation(info,
                        node, f"use of {node.value.id}.random outside "
                        f"repro.utils.rng; seed through "
                        f"repro.utils.rng.make_np_rng instead")


# ----------------------------------------------------------------------
# Rule: determinism-wallclock
# ----------------------------------------------------------------------
@register_rule
class DeterminismWallclockRule(Rule):
    id = "determinism-wallclock"
    summary = ("no wall-clock reads (time.time/perf_counter/...) inside "
               "repro.engine / repro.scenarios observation paths")
    explain = """\
Engine and scenario observations must be reproducible, so nothing on
those paths may read the wall clock.

The scenario oracle asserts bit-identical observations across 16
engine paths; a timestamp smuggled into a result (or into control flow
— "stop scanning after N ms") silently breaks replay.  Benchmarks and
experiment runners live outside these packages and may time freely;
the `python -m ...` CLI entry modules (`__main__`) are also exempt —
they report elapsed wall time to a human and never feed it back into
observations.

Complies: timing in benchmarks/, repro.experiments, or a __main__ CLI
Violates: time.time(), time.perf_counter(), datetime.now() inside
repro.engine.* or repro.scenarios.* library modules
"""

    SCOPES = ("repro.engine", "repro.scenarios")
    CLOCK_NAMES = frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    })
    DATETIME_NAMES = frozenset({"now", "utcnow", "today"})

    def _in_scope(self, module: str) -> bool:
        if module.rpartition(".")[2] == "__main__":
            return False
        return any(module == scope or module.startswith(scope + ".")
                   for scope in self.SCOPES)

    def check(self, info: ModuleInfo) -> Iterator[Violation]:
        if not self._in_scope(info.module):
            return
        for node in _runtime_walk(info.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "time":
                    for item in node.names:
                        if item.name in self.CLOCK_NAMES:
                            yield self.violation(info,
                                node, f"wall-clock import "
                                f"'from time import {item.name}' on an "
                                f"observation path; time outside "
                                f"repro.engine/repro.scenarios")
            elif isinstance(node, ast.Attribute) and isinstance(
                    node.value, ast.Name):
                base = node.value.id
                if base == "time" and node.attr in self.CLOCK_NAMES:
                    yield self.violation(info,
                        node, f"wall-clock read time.{node.attr} on an "
                        f"observation path; engine/scenario results "
                        f"must be replayable")
                elif (base in ("datetime", "date")
                      and node.attr in self.DATETIME_NAMES):
                    yield self.violation(info,
                        node, f"wall-clock read {base}.{node.attr} on an "
                        f"observation path; engine/scenario results "
                        f"must be replayable")


# ----------------------------------------------------------------------
# Rule: backend-parity
# ----------------------------------------------------------------------
_NP_PATTERNS = (
    # (regex, counterpart name templates, tried in order)
    (re.compile(r"^_np_(?P<stem>\w+)$"),
     ("_py_{stem}", "_{stem}", "{stem}")),
    (re.compile(r"^_numpy_(?P<stem>\w+)$"),
     ("_python_{stem}", "_py_{stem}")),
    (re.compile(r"^(?P<stem>_?\w+?)_numpy$"),
     ("{stem}_python", "{stem}_py")),
)


def _numpy_counterparts(name: str) -> tuple[str, ...] | None:
    """Counterpart names a numpy-kernel name implies, or None."""
    for pattern, templates in _NP_PATTERNS:
        match = pattern.match(name)
        if match is not None:
            stem = match.group("stem")
            return tuple(template.format(stem=stem)
                         for template in templates)
    return None


def _is_backend_guard(test: ast.expr) -> bool:
    """True for ``active_backend() == "numpy"`` (either orientation)."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1 \
            or not isinstance(test.ops[0], ast.Eq):
        return False
    sides = (test.left, test.comparators[0])
    call = next((s for s in sides if isinstance(s, ast.Call)), None)
    const = next((s for s in sides if isinstance(s, ast.Constant)), None)
    if call is None or const is None or const.value != "numpy":
        return False
    func = call.func
    name = func.id if isinstance(func, ast.Name) else \
        func.attr if isinstance(func, ast.Attribute) else None
    return name == "active_backend"


def _signature_shape(fn: ast.FunctionDef) -> tuple[int, int]:
    """(positional-arity, default count) with ``self``/``np`` stripped.

    The numpy side of a kernel pair conventionally takes the imported
    numpy module as a leading ``np`` parameter; arity is compared after
    removing it so the *semantic* signatures must match.
    """
    params = [arg.arg for arg in fn.args.posonlyargs + fn.args.args]
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    if params and params[0] == "np":
        params = params[1:]
    return len(params), len(fn.args.defaults)


class _Namespace:
    """Functions, classes and imported names visible in one scope."""

    def __init__(self, body: list[ast.stmt]):
        self.functions: dict[str, ast.FunctionDef] = {}
        self.imported: set[str] = set()
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node  # type: ignore[assignment]
            elif isinstance(node, ast.Import):
                for item in node.names:
                    self.imported.add(
                        (item.asname or item.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for item in node.names:
                    self.imported.add(item.asname or item.name)

    def resolve(self, name: str) -> ast.FunctionDef | None:
        return self.functions.get(name)

    def binds(self, name: str) -> bool:
        return name in self.functions or name in self.imported


@register_rule
class BackendParityRule(Rule):
    id = "backend-parity"
    summary = ("every numpy kernel in repro.engine needs a pure-Python "
               "counterpart with a matching signature")
    explain = """\
Every engine kernel is written twice — numpy arrays and plain Python —
and the equivalence suites pin the two bit-identical.  This rule makes
the *existence* half of that contract static: any function named like
a numpy kernel (`_np_X`, `_X_numpy`, `_numpy_X`), or dispatched from
the numpy branch of an `active_backend() == "numpy"` guard, must have
a pure-Python counterpart (`_py_X` / `_X` / `_X_python` / `_python_X`)
defined or imported in the same scope, with the same arity once the
conventional leading `np` module parameter is stripped.

Locally-defined helpers reached from a numpy dispatch branch that do
not follow the kernel naming convention are reported as advice: an
unnamed kernel is a kernel the parity check cannot see.

Complies: def _scan_numpy(pts, slots): ...  +  def _scan_python(pts, slots): ...
Violates: def _np_decode(np, keys): ...     with no _py_decode/_decode
"""

    SCOPE = "repro.engine"

    def check(self, info: ModuleInfo) -> Iterator[Violation]:
        if not (info.module == self.SCOPE
                or info.module.startswith(self.SCOPE + ".")):
            return
        module_ns = _Namespace(info.tree.body)
        yield from self._check_scope(info, info.tree.body, module_ns,
                                     module_ns, owner="module")
        for node in info.tree.body:
            if isinstance(node, ast.ClassDef):
                class_ns = _Namespace(node.body)
                yield from self._check_scope(
                    info, node.body, class_ns, module_ns,
                    owner=f"class {node.name}")

    def _check_scope(self, info: ModuleInfo, body: list[ast.stmt],
                     local_ns: _Namespace, module_ns: _Namespace,
                     owner: str) -> Iterator[Violation]:
        for name, fn in local_ns.functions.items():
            counterparts = _numpy_counterparts(name)
            if counterparts is None:
                continue
            yield from self._check_kernel(info, fn, counterparts,
                                          local_ns, module_ns, owner)
        # Functions dispatched from a numpy guard branch but not named
        # like kernels: the parity contract cannot see them.
        named = set(local_ns.functions) | set(module_ns.functions)
        for fn in local_ns.functions.values():
            for node in ast.walk(fn):
                if isinstance(node, ast.If) and _is_backend_guard(node.test):
                    for ref in self._local_refs(node.body, named):
                        if _numpy_counterparts(ref.id) is None:
                            yield self.violation(info,
                                ref, f"'{ref.id}' is dispatched on the "
                                f"numpy branch of a backend guard but is "
                                f"not named like a numpy kernel "
                                f"(_np_*/_*_numpy/_numpy_*); the parity "
                                f"check cannot pair it with a python "
                                f"counterpart", severity="advice")

    def _local_refs(self, body: list[ast.stmt],
                    named: set[str]) -> Iterator[ast.Name]:
        seen: set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and node.id in named \
                        and node.id not in seen:
                    seen.add(node.id)
                    yield node

    def _check_kernel(self, info: ModuleInfo, fn: ast.FunctionDef,
                      counterparts: tuple[str, ...], local_ns: _Namespace,
                      module_ns: _Namespace, owner: str,
                      ) -> Iterator[Violation]:
        for candidate in counterparts:
            twin = local_ns.resolve(candidate) or module_ns.resolve(candidate)
            if twin is not None:
                numpy_shape = _signature_shape(fn)
                python_shape = _signature_shape(twin)
                if numpy_shape != python_shape:
                    yield self.violation(info,
                        fn, f"numpy kernel '{fn.name}' and python "
                        f"counterpart '{twin.name}' disagree on "
                        f"signature: {numpy_shape[0]} vs "
                        f"{python_shape[0]} positional parameters "
                        f"(after stripping self/np), {numpy_shape[1]} "
                        f"vs {python_shape[1]} defaults")
                return
            if local_ns.binds(candidate) or module_ns.binds(candidate):
                # Imported counterpart (e.g. _mix64 from repro.utils.rng):
                # existence satisfied; the cross-module signature is the
                # equivalence suite's to check.
                return
        wanted = " / ".join(counterparts)
        yield self.violation(info,
            fn, f"numpy kernel '{fn.name}' in {owner} has no pure-Python "
            f"counterpart; define or import one of: {wanted}")


# ----------------------------------------------------------------------
# Rule: config-hygiene
# ----------------------------------------------------------------------
@register_rule
class ConfigHygieneRule(Rule):
    id = "config-hygiene"
    summary = ("no import-time os.environ reads: env vars resolve lazily, "
               "at call time")
    explain = """\
Environment variables must be read lazily, at call time — never at
import time.

PR 4 fixed exactly this bug class: repro.engine.parallel captured
REPRO_ENGINE_WORKERS at import, so configuring the environment after
`import repro` silently did nothing.  The resolution order
(explicit call > default config > env > builtin) only holds when the
env read happens inside the resolving function.

This rule flags any os.environ / os.getenv reference that evaluates at
import time: module top level, class bodies, decorators, and — easy to
miss — default parameter values, which evaluate once at def time.

Complies: def shard_workers(): return _parse(os.environ.get(...))
Violates: _WORKERS = os.environ.get("REPRO_ENGINE_WORKERS")
Violates: def run(n=os.getenv("N")): ...
"""

    def check(self, info: ModuleInfo) -> Iterator[Violation]:
        env_names = self._env_aliases(info.tree)
        yield from self._visit(info, info.tree.body, env_names,
                               in_function=False)

    def _env_aliases(self, tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "os":
                for item in node.names:
                    if item.name in ("environ", "getenv"):
                        names.add(item.asname or item.name)
        return names

    def _is_env_read(self, node: ast.AST, env_names: set[str]) -> str | None:
        if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name) and node.value.id == "os" \
                and node.attr in ("environ", "getenv"):
            return f"os.{node.attr}"
        if isinstance(node, ast.Name) and node.id in env_names \
                and isinstance(node.ctx, ast.Load):
            return node.id
        return None

    def _visit(self, info: ModuleInfo, nodes, env_names: set[str],
               in_function: bool) -> Iterator[Violation]:
        for node in nodes if isinstance(nodes, list) else [nodes]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Decorators and default values evaluate at def time —
                # i.e. at import time for module/class-level defs.
                import_time = node.decorator_list + node.args.defaults + \
                    [d for d in node.args.kw_defaults if d is not None]
                for expr in import_time:
                    yield from self._visit(info, expr, env_names,
                                           in_function)
                yield from self._visit(info, node.body, env_names,
                                       in_function=True)
                continue
            if isinstance(node, ast.Lambda):
                for expr in node.args.defaults + [
                        d for d in node.args.kw_defaults if d is not None]:
                    yield from self._visit(info, expr, env_names,
                                           in_function)
                yield from self._visit(info, node.body, env_names,
                                       in_function=True)
                continue
            read = self._is_env_read(node, env_names)
            if read is not None and not in_function:
                yield self.violation(info,
                    node, f"import-time read of {read}: environment "
                    f"variables must resolve lazily inside the function "
                    f"that uses them (explicit > default config > env > "
                    f"builtin)")
            yield from self._visit(info, list(ast.iter_child_nodes(node)),
                                   env_names, in_function)


# ----------------------------------------------------------------------
# Rule: generator-purity
# ----------------------------------------------------------------------
@register_rule
class GeneratorPurityRule(Rule):
    id = "generator-purity"
    summary = ("scenario generator families are pure functions of "
               "(family, seed, index): no global mutation, StreamRNG only")
    explain = """\
Scenario specs must be pure functions of (family, seed, index).

The CLI prints that triple as the standalone repro command for any
oracle failure; purity is what makes the triple sufficient.  A family
builder that mutates module state (a cache, a counter, the FAMILIES
registry) or draws from sequential randomness (make_rng, random.*,
np.random.*) produces specs that depend on how many specs were built
before — the repro command stops reproducing.

The rule applies to every function registered with @scenario_family
and every module-local helper reachable from one.  Draw randomness
exclusively from the counter-based StreamRNG (via label_stream-keyed
streams); read module constants freely, mutate nothing module-level.

Complies: draws.randint("window-x", -5, 5)   # StreamRNG under the hood
Violates: _CACHE[key] = spec; make_rng(seed).random()
"""

    TARGET_MODULES = ("repro.scenarios.generators",)
    FORBIDDEN_RNG = frozenset({"make_rng", "spawn_rng"})
    MUTATORS = frozenset({
        "append", "extend", "add", "discard", "remove", "pop", "popitem",
        "clear", "update", "setdefault", "insert", "sort", "reverse",
    })

    def check(self, info: ModuleInfo) -> Iterator[Violation]:
        if info.module not in self.TARGET_MODULES:
            return
        module_names = _module_bindings(info.tree)
        functions: dict[str, ast.FunctionDef] = {}
        classes: dict[str, ast.ClassDef] = {}
        for node in info.tree.body:
            if isinstance(node, ast.FunctionDef):
                functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                classes[node.name] = node
        targets = self._reachable(functions, classes)
        numpy_names = _numpy_aliases(info.tree)
        for fn in targets:
            yield from self._check_function(info, fn, module_names,
                                            numpy_names)

    def _reachable(self, functions: dict[str, ast.FunctionDef],
                   classes: dict[str, ast.ClassDef],
                   ) -> list[ast.FunctionDef]:
        """Family builders plus module-local helpers they reach."""
        queue = [fn for fn in functions.values()
                 if any(self._is_family_decorator(d)
                        for d in fn.decorator_list)]
        seen = {fn.name for fn in queue}
        result: list[ast.FunctionDef] = []
        while queue:
            fn = queue.pop()
            result.append(fn)
            # Walk the body only: the @scenario_family decorator call is
            # registration machinery, not part of the builder's logic.
            for node in (n for stmt in fn.body for n in ast.walk(stmt)):
                if not isinstance(node, ast.Name):
                    continue
                if node.id in functions and node.id not in seen:
                    seen.add(node.id)
                    queue.append(functions[node.id])
                elif node.id in classes and node.id not in seen:
                    seen.add(node.id)
                    for item in classes[node.id].body:
                        if isinstance(item, ast.FunctionDef) \
                                and item.name not in seen:
                            seen.add(item.name)
                            queue.append(item)
        return result

    def _is_family_decorator(self, node: ast.expr) -> bool:
        target = node.func if isinstance(node, ast.Call) else node
        name = target.id if isinstance(target, ast.Name) else \
            target.attr if isinstance(target, ast.Attribute) else None
        return name == "scenario_family"

    def _local_names(self, fn: ast.FunctionDef) -> set[str]:
        local = {arg.arg for arg in (
            fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs)}
        if fn.args.vararg:
            local.add(fn.args.vararg.arg)
        if fn.args.kwarg:
            local.add(fn.args.kwarg.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                local.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)) and node is not fn:
                local.add(node.name)
        return local

    def _check_function(self, info: ModuleInfo, fn: ast.FunctionDef,
                        module_names: set[str],
                        numpy_names: set[str]) -> Iterator[Violation]:
        local = self._local_names(fn)

        def is_module_global(name: str) -> bool:
            return name in module_names and name not in local

        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield self.violation(info,
                    node, f"generator '{fn.name}' declares "
                    f"global {', '.join(node.names)}: family builders "
                    f"must be pure functions of (family, seed, index)")
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target] if isinstance(node, ast.AugAssign) \
                    else node.targets
                for target in targets:
                    base = _subscript_base(target)
                    if base is not None and is_module_global(base):
                        yield self.violation(info,
                            node, f"generator '{fn.name}' mutates "
                            f"module-global '{base}': specs would depend "
                            f"on generation history, breaking the "
                            f"(family, seed, index) repro contract")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in self.MUTATORS \
                        and isinstance(func.value, ast.Name) \
                        and is_module_global(func.value.id):
                    yield self.violation(info,
                        node, f"generator '{fn.name}' calls "
                        f"{func.value.id}.{func.attr}(): mutating "
                        f"module-global state breaks the "
                        f"(family, seed, index) repro contract")
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in self.FORBIDDEN_RNG and node.id not in local:
                    yield self.violation(info,
                        node, f"generator '{fn.name}' uses sequential "
                        f"randomness '{node.id}'; draw through the "
                        f"counter-based StreamRNG (label_stream-keyed) "
                        f"so specs stay order-independent")
                elif node.id == "random" and node.id not in local:
                    yield self.violation(info,
                        node, f"generator '{fn.name}' touches the "
                        f"'random' module; draw through the counter-"
                        f"based StreamRNG instead")
            if isinstance(node, ast.Attribute) and node.attr == "random" \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in numpy_names:
                yield self.violation(info,
                    node, f"generator '{fn.name}' touches "
                    f"{node.value.id}.random; draw through the counter-"
                    f"based StreamRNG instead")


# ----------------------------------------------------------------------
# Rule: fault-hygiene
# ----------------------------------------------------------------------
@register_rule
class FaultHygieneRule(Rule):
    id = "fault-hygiene"
    summary = ("no bare 'except:' and no swallowed 'except Exception:' "
               "inside repro.engine / repro.faults")
    explain = """\
The resilience lanes must observe every failure they handle.

repro.engine's retry/serial-fallback/degrade paths and the repro.faults
injection layer exist to turn failures into *structured* outcomes —
a retry, a typed ShardFailure, an EngineDegradedWarning, a chaos
verdict.  A bare `except:` (which also eats KeyboardInterrupt and the
injected-fault exceptions the chaos oracle steers by) or an
`except Exception: pass` (which makes a failure invisible to callers,
warnings and tests alike) silently deletes exactly the signal this
fault model is built on.

Two shapes are flagged inside repro.engine and repro.faults:

1. a handler with no exception type (`except:`);
2. a broad handler (`except Exception:` / `except BaseException:`)
   whose body does nothing but `pass`/`...` — caught and discarded.

Broad handlers that *do* something (degrade with a warning, chain into
a typed error, fall back to a reference lane) comply.  A deliberate
swallow needs a reasoned pragma:

Complies: except Exception as error: warnings.warn(EngineDegradedWarning(...))
Complies: except OverflowError: return None  # narrow, typed
Violates: except: pass
Violates: except Exception:
              pass
"""

    SCOPES = ("repro.engine", "repro.faults")
    BROAD = frozenset({"Exception", "BaseException"})

    def _in_scope(self, module: str) -> bool:
        if module.rpartition(".")[2] == "__main__":
            return False
        return any(module == scope or module.startswith(scope + ".")
                   for scope in self.SCOPES)

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        node = handler.type
        name = node.id if isinstance(node, ast.Name) else \
            node.attr if isinstance(node, ast.Attribute) else None
        return name in self.BROAD

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                    stmt.value, ast.Constant) and stmt.value.value is ...:
                continue
            return False
        return True

    def check(self, info: ModuleInfo) -> Iterator[Violation]:
        if not self._in_scope(info.module):
            return
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(info,
                    node, "bare 'except:' in a fault-handling scope: it "
                    "eats KeyboardInterrupt and the injected-fault "
                    "exceptions the chaos oracle steers by; catch a "
                    "typed exception and surface a structured outcome")
            elif self._is_broad(node) and self._swallows(node):
                yield self.violation(info,
                    node, "'except Exception: pass' swallows the failure "
                    "signal the resilience lanes are built on; degrade "
                    "with a warning, chain into a typed error, or "
                    "narrow the handler")


# ----------------------------------------------------------------------
# Rule: service-hygiene
# ----------------------------------------------------------------------
@register_rule
class ServiceHygieneRule(Rule):
    id = "service-hygiene"
    summary = ("no blocking calls (time.sleep, sync file IO, subprocess) "
               "inside repro.service coroutine functions")
    explain = """\
Coroutines in repro.service must never block the event loop.

The service's asyncio front end (AsyncSchedulingService) multiplexes
thousands of sessions onto one loop thread; a single time.sleep, open()
read, or subprocess call inside a coroutine stalls *every* session's
request, not just its own — latency p99s explode while the CPU sits
idle.  Blocking work belongs on the dispatcher/worker threads (where
the batcher's retry backoff rightly sleeps); coroutines bridge to it
via asyncio.wrap_future / run_in_executor and await the result.

Flagged inside `async def` functions of repro.service modules (nested
synchronous helpers included — they run on the loop when the coroutine
calls them; nested `async def`s are checked on their own):

1. time.sleep(...) — use `await asyncio.sleep(...)`;
2. synchronous file IO — open(), io.open(), Path.read_text/read_bytes/
   write_text/write_bytes — hand the file to a worker thread;
3. subprocess use (subprocess.*, os.system) — run it in an executor.

A deliberate exception needs a reasoned pragma:
`# repro: allow[service-hygiene] -- <why this cannot block>`.

Complies: async def verify(...): return await asyncio.wrap_future(f)
Violates: async def verify(...): time.sleep(0.1); return f.result()
"""

    SCOPE = "repro.service"
    FILE_IO_ATTRS = frozenset({
        "read_text", "read_bytes", "write_text", "write_bytes",
    })
    SUBPROCESS_NAMES = frozenset({
        "run", "call", "check_call", "check_output", "Popen",
        "getoutput", "getstatusoutput",
    })

    def _in_scope(self, module: str) -> bool:
        return module == self.SCOPE or module.startswith(self.SCOPE + ".")

    def check(self, info: ModuleInfo) -> Iterator[Violation]:
        if not self._in_scope(info.module):
            return
        sleep_aliases = set()
        subprocess_aliases = set()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    sleep_aliases.update(
                        item.asname or item.name for item in node.names
                        if item.name == "sleep")
                elif node.module == "subprocess":
                    subprocess_aliases.update(
                        item.asname or item.name for item in node.names
                        if item.name in self.SUBPROCESS_NAMES)
        for coroutine in self._coroutines(info.tree):
            yield from self._check_coroutine(info, coroutine,
                                             sleep_aliases,
                                             subprocess_aliases)

    def _coroutines(self, tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield node

    def _coroutine_body(self, fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk a coroutine including nested sync defs (they run on the
        loop when the coroutine calls them), excluding nested ``async
        def``s — each coroutine is checked on its own."""
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.AsyncFunctionDef):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_coroutine(self, info: ModuleInfo, fn: ast.AsyncFunctionDef,
                         sleep_aliases: set[str],
                         subprocess_aliases: set[str],
                         ) -> Iterator[Violation]:
        where = f"coroutine '{fn.name}'"
        for node in self._coroutine_body(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name):
                base, attr = func.value.id, func.attr
                if base == "time" and attr == "sleep":
                    yield self.violation(info,
                        node, f"time.sleep in {where} blocks the whole "
                        f"event loop; use 'await asyncio.sleep(...)'")
                elif base == "io" and attr == "open":
                    yield self.violation(info,
                        node, f"synchronous io.open in {where} blocks "
                        f"the event loop; do file IO on a worker thread")
                elif base == "subprocess":
                    yield self.violation(info,
                        node, f"subprocess.{attr} in {where} blocks the "
                        f"event loop; run it in an executor")
                elif base == "os" and attr == "system":
                    yield self.violation(info,
                        node, f"os.system in {where} blocks the event "
                        f"loop; run it in an executor")
                elif attr in self.FILE_IO_ATTRS:
                    yield self.violation(info,
                        node, f"synchronous file IO .{attr}() in {where} "
                        f"blocks the event loop; do file IO on a worker "
                        f"thread")
            elif isinstance(func, ast.Attribute) \
                    and func.attr in self.FILE_IO_ATTRS:
                yield self.violation(info,
                    node, f"synchronous file IO .{func.attr}() in "
                    f"{where} blocks the event loop; do file IO on a "
                    f"worker thread")
            elif isinstance(func, ast.Name):
                if func.id == "open":
                    yield self.violation(info,
                        node, f"synchronous open() in {where} blocks the "
                        f"event loop; do file IO on a worker thread")
                elif func.id in sleep_aliases:
                    yield self.violation(info,
                        node, f"time.sleep (imported as '{func.id}') in "
                        f"{where} blocks the event loop; use 'await "
                        f"asyncio.sleep(...)'")
                elif func.id in subprocess_aliases:
                    yield self.violation(info,
                        node, f"subprocess call '{func.id}' in {where} "
                        f"blocks the event loop; run it in an executor")


def _subscript_base(target: ast.expr) -> str | None:
    """The root Name of a ``X[...]`` / ``X.attr`` store target, if any."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _module_bindings(tree: ast.Module,
                     include_type_checking: bool = False) -> set[str]:
    """Names bound at module level (imports, defs, assignments).

    Walks conditional bodies too (an ``if``-guarded def still binds),
    excluding ``if TYPE_CHECKING:`` blocks unless asked — those names
    do not exist at runtime.
    """
    names: set[str] = set()

    def visit(body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Import):
                for item in node.names:
                    names.add((item.asname or item.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for item in node.names:
                    if item.name == "*":
                        names.add("*")
                    else:
                        names.add(item.asname or item.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    names.update(_target_names(target))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                names.update(_target_names(node.target))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                names.update(_target_names(node.target))
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.While):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.If):
                if _is_type_checking_test(node.test) \
                        and not include_type_checking:
                    visit(node.orelse)
                else:
                    visit(node.body)
                    visit(node.orelse)
            elif isinstance(node, (ast.Try,)):
                visit(node.body)
                for handler in node.handlers:
                    if handler.name:
                        names.add(handler.name)
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        names.update(_target_names(item.optional_vars))
                visit(node.body)

    visit(tree.body)
    return names


def _target_names(target: ast.expr) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


# ----------------------------------------------------------------------
# Rule: export-integrity
# ----------------------------------------------------------------------
@register_rule
class ExportIntegrityRule(Rule):
    id = "export-integrity"
    summary = ("__all__ in every repro package is a literal naming only "
               "defined symbols and covering the public facade")
    explain = """\
__all__ is the facade contract: it must be statically checkable,
truthful, and complete.

Three failure modes are flagged:

1. Undefined exports — a name in __all__ with no module-level binding
   breaks `from repro.x import *` and lies to readers about the
   surface.  (TYPE_CHECKING-only imports do not count: they vanish at
   runtime.)
2. Dynamic or duplicated __all__ — a computed __all__ defeats every
   static consumer (this linter, IDEs, stub generators); duplicates
   are copy-paste debris.
3. Facade drift (package __init__ only) — a public name bound by a
   def, class, or from-import that is missing from __all__ is
   importable-but-undocumented surface; export it or underscore it.
   Package __init__ files must define __all__ at all.

Complies: __all__ = ["Session", "EngineConfig"]  (all bound, all public
names covered)
Violates: __all__ = ["Sessoin"]; __all__ = [n for n in ...]
"""

    def check(self, info: ModuleInfo) -> Iterator[Violation]:
        assignment = self._find_all(info.tree)
        is_package = info.path.name == "__init__.py"
        in_repro = info.module == "repro" or info.module.startswith("repro.")
        if assignment is None:
            if is_package and in_repro:
                yield self.violation(info,
                    1, f"package {info.module or info.relpath} defines no "
                    f"__all__; every repro package must declare its "
                    f"export surface")
            return
        names = self._literal_names(assignment.value)
        if names is None:
            yield self.violation(info,
                assignment, "__all__ must be a literal list/tuple of "
                "string constants; a computed __all__ defeats static "
                "checking")
            return
        bound = _module_bindings(info.tree)
        star_import = "*" in bound
        seen: set[str] = set()
        for name in names:
            if name in seen:
                yield self.violation(info,
                    assignment, f"__all__ lists {name!r} more than once")
            seen.add(name)
            if not star_import and name not in bound:
                yield self.violation(info,
                    assignment, f"__all__ exports undefined name "
                    f"{name!r}: no module-level def, class, assignment "
                    f"or runtime import binds it")
        if is_package and in_repro:
            for node, name in self._public_bindings(info.tree):
                if name not in seen:
                    yield self.violation(info,
                        node, f"public name {name!r} is importable from "
                        f"{info.module} but missing from __all__; export "
                        f"it or rename it with a leading underscore")

    def _find_all(self, tree: ast.Module) -> ast.Assign | None:
        for node in tree.body:
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in node.targets):
                return node
        return None

    def _literal_names(self, value: ast.expr) -> list[str] | None:
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None
        names: list[str] = []
        for element in value.elts:
            if not isinstance(element, ast.Constant) \
                    or not isinstance(element.value, str):
                return None
            names.append(element.value)
        return names

    def _public_bindings(self, tree: ast.Module,
                         ) -> Iterator[tuple[ast.stmt, str]]:
        """(node, name) for public facade bindings in a package body."""
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if not node.name.startswith("_"):
                    yield node, node.name
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for item in node.names:
                    if item.name == "*":
                        continue
                    name = item.asname or item.name
                    if not name.startswith("_"):
                        yield node, name
