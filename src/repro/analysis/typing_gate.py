"""The strict-typing gate over the typed core of the library.

``repro.api``, ``repro.engine.config`` and ``repro.scenarios.spec`` are
the service-grade surface: they ship a ``py.typed`` marker and are held
to ``mypy --strict``.  CI runs mypy directly; this module wraps that
invocation *and* provides a dependency-free fallback so the gate also
runs where mypy is not installed (the offline reproduction container):
an AST pass asserting every function and method in the typed core is
fully annotated — parameters and return — which is the part of strict
mode that regresses most often.

The fallback is deliberately a subset of mypy (it proves annotation
*presence*, not *consistency*); when mypy is importable the real
checker runs and the fallback result is ignored.
"""

from __future__ import annotations

import ast
import subprocess
import sys
from collections.abc import Iterator, Sequence
from pathlib import Path

from repro.analysis.core import ModuleInfo, Violation, parse_module

__all__ = [
    "TYPED_CORE",
    "mypy_available",
    "run_mypy",
    "annotation_gaps",
    "run_typing_gate",
]

#: Modules held to ``mypy --strict``, as paths relative to the repo root.
TYPED_CORE = (
    "src/repro/api.py",
    "src/repro/engine/config.py",
    "src/repro/scenarios/spec.py",
)


def mypy_available() -> bool:
    """True when mypy is importable in this interpreter."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy(paths: Sequence[str | Path],
             root: Path | None = None) -> tuple[int, str]:
    """Run ``mypy --strict`` over the given files; (returncode, output).

    ``--follow-imports=silent`` keeps strictness scoped to the named
    typed-core files — their imports are followed for types but not
    themselves held to strict mode, so the gate can be adopted module
    by module.
    """
    command = [
        sys.executable, "-m", "mypy", "--strict",
        "--follow-imports=silent", "--no-error-summary",
        *map(str, paths),
    ]
    result = subprocess.run(
        command, capture_output=True, text=True, cwd=root,
        env=_mypy_env(root))
    return result.returncode, (result.stdout + result.stderr).strip()


def _mypy_env(root: Path | None) -> dict[str, str]:
    import os
    env = dict(os.environ)
    src = str(((root or Path.cwd()) / "src").resolve())
    existing = env.get("MYPYPATH")
    env["MYPYPATH"] = f"{src}:{existing}" if existing else src
    return env


def annotation_gaps(paths: Sequence[str | Path],
                    root: Path | None = None) -> list[Violation]:
    """AST fallback: every def in the typed core is fully annotated.

    Flags parameters (beyond ``self``/``cls``) without annotations and
    functions without a return annotation.  ``*args``/``**kwargs`` are
    included — strict mode requires them typed too.
    """
    findings: list[Violation] = []
    for path in paths:
        info = parse_module(Path(path), root=root)
        findings.extend(_module_gaps(info))
    return findings


def _module_gaps(info: ModuleInfo) -> Iterator[Violation]:
    for node in ast.walk(info.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        params = list(args.posonlyargs) + list(args.args)
        if params and params[0].arg in ("self", "cls"):
            params = params[1:]
        params += list(args.kwonlyargs)
        if args.vararg is not None:
            params.append(args.vararg)
        if args.kwarg is not None:
            params.append(args.kwarg)
        for param in params:
            if param.annotation is None:
                yield Violation(
                    rule="typing-gate", path=info.relpath,
                    line=node.lineno,
                    message=(f"parameter {param.arg!r} of "
                             f"'{node.name}' lacks a type annotation "
                             f"(typed core is held to mypy --strict)"))
        if node.returns is None:
            yield Violation(
                rule="typing-gate", path=info.relpath, line=node.lineno,
                message=(f"'{node.name}' lacks a return annotation "
                         f"(typed core is held to mypy --strict)"))


def run_typing_gate(root: Path | None = None,
                    paths: Sequence[str] | None = None,
                    ) -> tuple[bool, str, str]:
    """Run the gate: mypy when available, the AST fallback otherwise.

    Returns:
        ``(ok, mode, output)`` where ``mode`` is ``"mypy"`` or
        ``"annotations"``.
    """
    base = root or Path.cwd()
    targets = [base / p for p in (paths or TYPED_CORE)]
    missing = [str(t) for t in targets if not t.exists()]
    if missing:
        return False, "annotations", \
            "typed-core file(s) missing: " + ", ".join(missing)
    if mypy_available():
        returncode, output = run_mypy(targets, root=base)
        return returncode == 0, "mypy", output
    gaps = annotation_gaps(targets, root=base)
    output = "\n".join(v.format() for v in gaps)
    if not gaps:
        output = (f"mypy not installed; annotation-completeness fallback "
                  f"passed on {len(targets)} typed-core file(s)")
    return not gaps, "annotations", output
