"""``python -m repro.analysis`` — the invariant linter's command line.

Subcommands:

* ``check [--strict] [--format text|json] [--rule ID ...]
  [--baseline FILE] PATH...`` — run the rules; exit 0 when clean, 1 on
  findings (``--strict`` also fails on advice-severity findings), 2 on
  usage errors.
* ``explain RULE`` — print a rule's long-form documentation: the
  invariant, why it holds, how to comply, how to pragma.
* ``baseline -o FILE PATH...`` — accept the current findings so later
  ``check --baseline FILE`` runs fail only on *new* violations
  (incremental adoption).
* ``typecheck`` — the strict-typing gate over the typed core
  (``mypy --strict`` when installed, the annotation-completeness
  fallback otherwise).
* ``rules`` — list every registered rule with its one-line summary.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.core import (
    check_paths,
    get_rule,
    all_rules,
    iter_python_files,
    load_baseline,
    rule_ids,
    save_baseline,
)
from repro.analysis.report import render_json, render_text
from repro.analysis.typing_gate import TYPED_CORE, run_typing_gate

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant linter for the repro codebase")
    subparsers = parser.add_subparsers(dest="command", required=True)

    check = subparsers.add_parser(
        "check", help="run the invariant rules over files/directories")
    check.add_argument("paths", nargs="+", metavar="PATH",
                       help="files or directories to check")
    check.add_argument("--strict", action="store_true",
                       help="fail on advice-severity findings too")
    check.add_argument("--format", choices=("text", "json"),
                       default="text", help="report format")
    check.add_argument("--rule", action="append", dest="rules",
                       metavar="ID", help="run only this rule "
                       "(repeatable; default: all rules)")
    check.add_argument("--baseline", metavar="FILE",
                       help="suppress findings recorded by 'baseline'")

    explain = subparsers.add_parser(
        "explain", help="print one rule's documentation")
    explain.add_argument("rule", metavar="RULE",
                         help="rule id (see 'rules')")

    baseline = subparsers.add_parser(
        "baseline", help="record current findings as accepted")
    baseline.add_argument("paths", nargs="+", metavar="PATH")
    baseline.add_argument("-o", "--output", required=True, metavar="FILE",
                          help="baseline file to write")

    typecheck = subparsers.add_parser(
        "typecheck", help="strict-typing gate over the typed core")
    typecheck.add_argument("--root", default=".", metavar="DIR",
                           help="repository root (default: cwd)")

    subparsers.add_parser("rules", help="list registered rules")
    return parser


def _cmd_check(args: argparse.Namespace) -> int:
    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            print(f"error: cannot read baseline {args.baseline}: {error}",
                  file=sys.stderr)
            return EXIT_USAGE
    try:
        if args.rules:
            for rule_id in args.rules:
                get_rule(rule_id)  # validate before checking anything
        checked = sum(1 for _ in iter_python_files(args.paths))
        active, suppressed = check_paths(args.paths, rules=args.rules,
                                         baseline=baseline)
    except (FileNotFoundError, KeyError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return EXIT_USAGE
    renderer = render_json if args.format == "json" else render_text
    print(renderer(active, suppressed, checked_files=checked,
                   strict=args.strict))
    failing = active if args.strict \
        else [v for v in active if v.severity == "error"]
    return EXIT_FINDINGS if failing else EXIT_OK


def _cmd_explain(args: argparse.Namespace) -> int:
    try:
        rule = get_rule(args.rule)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return EXIT_USAGE
    print(f"{rule.id} — {rule.summary}")
    print()
    print(rule.explain.rstrip())
    print()
    print(f"Suppress (with a written reason, sparingly):")
    print(f"    # repro: allow[{rule.id}] -- <why this line is exempt>")
    return EXIT_OK


def _cmd_baseline(args: argparse.Namespace) -> int:
    try:
        active, _ = check_paths(args.paths)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    count = save_baseline(args.output, active)
    print(f"accepted {count} finding(s) into {args.output}")
    return EXIT_OK


def _cmd_typecheck(args: argparse.Namespace) -> int:
    ok, mode, output = run_typing_gate(root=Path(args.root))
    if output:
        print(output)
    print(f"typing gate ({mode}) over {len(TYPED_CORE)} typed-core "
          f"file(s): {'OK' if ok else 'FAIL'}")
    return EXIT_OK if ok else EXIT_FINDINGS


def _cmd_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id:24} {rule.summary}")
    print(f"\n{len(rule_ids())} rule(s); "
          f"'explain <rule>' prints the full contract")
    return EXIT_OK


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        # argparse exits 2 on usage errors already; normalize the type.
        return int(error.code or 0)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "baseline":
        return _cmd_baseline(args)
    if args.command == "typecheck":
        return _cmd_typecheck(args)
    return _cmd_rules()
