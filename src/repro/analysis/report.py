"""Rendering of linter findings: human text and machine JSON."""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.core import Violation

__all__ = ["render_text", "render_json"]


def render_text(active: Sequence[Violation],
                suppressed: Sequence[Violation], *,
                checked_files: int, strict: bool) -> str:
    """The human report: one line per finding plus a summary line."""
    lines = [finding.format() for finding in active]
    errors = sum(1 for v in active if v.severity == "error")
    advice = len(active) - errors
    failing = len(active) if strict else errors
    summary = (f"{checked_files} file(s) checked: "
               f"{errors} error(s), {advice} advice, "
               f"{len(suppressed)} suppressed")
    if failing:
        summary += " — FAIL"
        if strict and advice and not errors:
            summary += " (advice fails under --strict)"
    else:
        summary += " — OK"
    lines.append(summary)
    return "\n".join(lines)


def render_json(active: Sequence[Violation],
                suppressed: Sequence[Violation], *,
                checked_files: int, strict: bool) -> str:
    """The machine report: stable keys, findings in report order."""
    errors = sum(1 for v in active if v.severity == "error")
    payload = {
        "checked_files": checked_files,
        "strict": strict,
        "ok": not (active if strict else
                   [v for v in active if v.severity == "error"]),
        "errors": errors,
        "advice": len(active) - errors,
        "suppressed": len(suppressed),
        "violations": [v.to_dict() for v in active],
        "suppressed_violations": [v.to_dict() for v in suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
