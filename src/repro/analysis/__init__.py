"""repro.analysis — static enforcement of the library's invariants.

The test suite proves the invariants dynamically (the 16-path scenario
oracle, the backend-equivalence suites); this package proves the
*preconditions* statically, at review time, the same check-legality-
before-you-run discipline as a dependence-checked tiling legality
analysis.  Six AST rules guard the contracts everything else builds on:

==========================  ===========================================
``determinism-random``      randomness only via :mod:`repro.utils.rng`
``determinism-wallclock``   no wall clock on engine/scenario paths
``backend-parity``          every numpy kernel has a python twin
``config-hygiene``          no import-time ``os.environ`` reads
``generator-purity``        scenario generators are pure functions
``export-integrity``        ``__all__`` is literal, truthful, complete
==========================  ===========================================

Run it::

    python -m repro.analysis check --strict src    # the CI gate
    python -m repro.analysis explain backend-parity
    python -m repro.analysis typecheck             # mypy --strict core

Suppress a finding only with a written reason::

    x = time.time()  # repro: allow[determinism-wallclock] -- <why>

Alongside the linter, :mod:`repro.analysis.typing_gate` holds the typed
core (:mod:`repro.api`, :mod:`repro.engine.config`,
:mod:`repro.scenarios.spec` — shipped with a ``py.typed`` marker) to
``mypy --strict``, with a dependency-free annotation-completeness
fallback for environments without mypy.
"""

from __future__ import annotations

from repro.analysis.core import (
    ModuleInfo,
    Pragma,
    Rule,
    Violation,
    all_rules,
    check_paths,
    fingerprint,
    get_rule,
    load_baseline,
    register_rule,
    rule_ids,
    save_baseline,
)
from repro.analysis.report import render_json, render_text
from repro.analysis.typing_gate import (
    TYPED_CORE,
    annotation_gaps,
    mypy_available,
    run_typing_gate,
)

__all__ = [
    "ModuleInfo",
    "Pragma",
    "Rule",
    "Violation",
    "all_rules",
    "check_paths",
    "fingerprint",
    "get_rule",
    "register_rule",
    "rule_ids",
    "load_baseline",
    "save_baseline",
    "render_json",
    "render_text",
    "TYPED_CORE",
    "annotation_gaps",
    "mypy_available",
    "run_typing_gate",
]
