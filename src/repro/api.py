"""repro.api — the typed Session/Config facade over the whole library.

The internals are fast (dual-backend bulk engine, sharded execution,
incremental dirty-region verification) but historically they were driven
through an accreted surface: env vars for configuration, free functions
in :mod:`repro.core.schedule`, a separately-constructed simulator.  This
module is the service-grade surface the ROADMAP asks for: one
:class:`Session` object owns a schedule together with its verification
state and exposes the full lifecycle as typed request/response methods,
and one :class:`~repro.engine.config.EngineConfig` value replaces the
process-global knobs (which keep working as lazy fallbacks).

Quickstart::

    from repro.api import Box, EngineConfig, Session

    session = Session.for_chebyshev(1, window=Box((-10, -10), (10, 10)),
                                    config=EngineConfig(workers=4))
    assignment = session.assign([(0, 0), (10, 7)])   # SlotAssignment
    report = session.verify()                        # VerificationReport
    assert report.collision_free
    metrics = session.simulate("aloha", slots=90, p=0.2)
    text = session.save()                            # JSON round-trip
    same = Session.load(text)

Every method is pinned bit-identical to the legacy entry point it wraps
(``schedule.slots_of`` / ``find_collisions`` / ``simulate`` / the
serializer) by the equivalence suite in ``tests/unit/test_api.py`` —
the facade adds typing and lifecycle, never different answers.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator, Mapping, Sequence
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass
from typing import Any, Callable, NamedTuple

from repro.core.certify import (
    PeriodicCertificate,
    certify_schedule,
    stream_box_collisions,
)
from repro.core.schedule import (
    Collision,
    MappingSchedule,
    MultiTilingSchedule,
    Schedule,
    ScheduleDelta,
    TilingSchedule,
    VerificationCache,
    find_collisions,
)
from repro.core.serialize import (
    CorruptSessionError,
    schedule_from_json,
    schedule_to_json,
)
from repro.core.theorem1 import schedule_from_prototile, schedule_from_tiling
from repro.core.theorem2 import schedule_from_multi_tiling
from repro.engine.backend import active_backend
from repro.engine.config import (
    EngineConfig,
    default_config,
    set_default_config,
    use_config,
)
from repro.engine.parallel import shard_workers
from repro.net.energy import UNIT_TX_MODEL, EnergyModel
from repro.net.metrics import SimulationMetrics
from repro.net.model import Network, SensorNode
from repro.net.protocols import (
    MACProtocol,
    make_protocol,
    protocol_names,
    register_protocol,
)
from repro.net.simulator import BroadcastSimulator
from repro.tiles.prototile import Prototile
from repro.tiles.shapes import chebyshev_ball
from repro.tiling.base import Tiling
from repro.tiling.multi import MultiTiling
from repro.utils.validation import require
from repro.utils.vectors import IntVec, as_intvec, box_points

__all__ = [
    "Box",
    "CorruptSessionError",
    "EngineConfig",
    "RepairReport",
    "Session",
    "SlotAssignment",
    "VerificationReport",
    "default_config",
    "set_default_config",
    "use_config",
    "make_protocol",
    "protocol_names",
    "register_protocol",
]

NeighborhoodFn = Callable[[IntVec], frozenset[IntVec]]


class Box(NamedTuple):
    """Explicit box-shaped window spec: the closed ``[lo, hi]`` corner pair.

    ``Box((-10, -10), (10, 10))`` expands to every lattice point of the
    box (inclusive on both corners).  The marker exists so a box is
    never confused with a literal two-point window: any plain iterable
    passed as ``window=`` is taken as the points themselves, only a
    ``Box`` is expanded.
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def _corners(self) -> tuple[IntVec, IntVec]:
        lo, hi = as_intvec(self.lo), as_intvec(self.hi)
        if len(lo) != len(hi) or any(l > h for l, h in zip(lo, hi)):
            raise ValueError(
                f"Box corners must satisfy lo <= hi per dimension; got "
                f"lo={lo}, hi={hi}")
        return lo, hi

    def points(self) -> list[IntVec]:
        """Every lattice point of the box, in box_points order.

        Raises:
            ValueError: when the corners have different dimensions or
                are swapped (``lo > hi`` on some axis) — an empty box
                is always a caller mistake, never a window.
        """
        lo, hi = self._corners()
        return list(box_points(lo, hi))

    def volume(self) -> int:
        """Lattice-point count of the box, without materializing it.

        The certificate and streaming verification paths report window
        sizes for boxes far too large to expand; same corner
        validation as :meth:`points`.
        """
        lo, hi = self._corners()
        volume = 1
        for low, high in zip(lo, hi):
            volume *= high - low + 1
        return volume


#: Window specifications accepted by Session: an iterable of points
#: (taken literally), or a :class:`Box` expanded to the full integer
#: box.  The pre-Box corner-pair form — a bare 2-tuple of coordinate
#: tuples — is rejected loudly rather than silently re-read as two
#: points.
WindowLike = Any


def _as_window(window: WindowLike) -> list[IntVec]:
    """Normalize a window spec to a point list.

    A :class:`Box` expands to the full integer box; every other
    iterable is treated as the points themselves.  The one exception is
    the legacy corner-pair spelling (a bare 2-tuple of int sequences),
    which used to mean a box: silently verifying just its two corner
    points would make old callers' reports vacuously collision-free, so
    it raises instead — pass ``Box(lo, hi)``, or a list for two
    literal points.
    """
    if isinstance(window, Box):
        return window.points()
    if (isinstance(window, tuple) and len(window) == 2
            and all(isinstance(corner, (tuple, list)) and corner
                    and all(isinstance(c, int) for c in corner)
                    for corner in window)):
        raise TypeError(
            f"ambiguous window {window!r}: a bare corner-pair tuple "
            f"used to mean a box — pass Box{window!r} for the box, or "
            f"a list {list(window)!r} for two literal points")
    return [as_intvec(p) for p in window]


# ----------------------------------------------------------------------
# Typed responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SlotAssignment:
    """Response of :meth:`Session.assign`: slots for a batch of sensors.

    ``points`` and ``slots`` are aligned; both are stored as handed back
    by the engine (no copies on the hot path) and must be treated as
    immutable.

    Attributes:
        points: the queried sensors, in request order.
        slots: slot per sensor, each in ``0..num_slots-1``.
        num_slots: the schedule's period.
        backend: engine backend that served the request.
    """

    points: Sequence[Sequence[int]]
    slots: Sequence[int]
    num_slots: int
    backend: str

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self) -> Iterator[tuple[IntVec, int]]:
        for point, slot in zip(self.points, self.slots):
            yield as_intvec(point), slot

    def slot_of(self, point: Sequence[int]) -> int:
        """Slot of one queried sensor (O(n) scan; use as_dict for many)."""
        key = as_intvec(point)
        for p, slot in self:
            if p == key:
                return slot
        raise KeyError(f"point {key} was not part of this assignment")

    def as_dict(self) -> dict[IntVec, int]:
        """The assignment as a point -> slot mapping."""
        return dict(self)


@dataclass(frozen=True)
class VerificationReport:
    """Response of :meth:`Session.verify`: collisions + how they were found.

    Attributes:
        collisions: colliding pairs, each ordered ``x < y``, list sorted —
            byte-identical to :func:`repro.core.schedule.find_collisions`
            over the same window.
        window_size: sensors in the verified window.
        source: how the answer was produced — ``"scan"`` (full window
            scan), ``"delta"`` (incremental dirty-region re-verification
            after an :meth:`Session.edit`), ``"cache"`` (returned from
            the warm cache without rescanning), or ``"certificate"``
            (answered from the schedule's
            :class:`~repro.core.certify.PeriodicCertificate` — one
            fundamental-domain scan covers every congruent window).
        checked_points: sensors actually (re)scanned for this answer:
            the window for a scan, the changed points that fall inside
            this window for a delta, 0 for a cache hit; the first
            certificate-served verify reports the fundamental-domain
            points the certifying scan covered, later ones 0.
        cache_hits: session-lifetime count of cache- or
            certificate-served verifies.
        cache_misses: session-lifetime count of full scans (the
            certifying fundamental-domain scan included).
        backend: engine backend in effect for the request.
        workers: shard worker count in effect for the request.
    """

    collisions: tuple[Collision, ...]
    window_size: int
    source: str
    checked_points: int
    cache_hits: int
    cache_misses: int
    backend: str
    workers: int

    @property
    def collision_free(self) -> bool:
        """True when no pair of sensors in the window collides."""
        return not self.collisions


@dataclass(frozen=True)
class RepairReport:
    """Response of :meth:`Session.repair`: what was broken and fixed.

    Attributes:
        session: the repaired session (``self`` when nothing needed
            repairing — a clean schedule round-trips untouched).
        faults_found: colliding pairs detected before repair started.
        points_rescheduled: sensors moved to a new slot, summed over
            all repair rounds.
        rounds: repair rounds run (an edit followed by an incremental
            re-verification each).
        verification_source: ``source`` of the final verification —
            ``"delta"`` when the dirty-region cache path confirmed the
            repair, ``"scan"``/``"cache"``/``"certificate"`` otherwise.
        repaired: True when the final verification found no collisions.
        collisions: colliding pairs still present after the last round
            (empty when ``repaired``).
    """

    session: Session
    faults_found: int
    points_rescheduled: int
    rounds: int
    verification_source: str
    repaired: bool
    collisions: tuple[Collision, ...]


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
class Session:
    """One schedule plus its verification/simulation lifecycle.

    A session owns a :class:`~repro.core.schedule.Schedule`, the
    :class:`~repro.core.schedule.VerificationCache` instances for the
    windows it has verified, and an optional
    :class:`~repro.engine.config.EngineConfig` that every request is
    served under (``None`` keeps the ambient default-config/env-var
    resolution).  Sessions are cheap value-like objects: :meth:`edit`
    returns a *new* session for the edited schedule (transferring the
    warm caches after an incremental dirty-region re-verification), and
    :meth:`with_config` re-wraps the same schedule under another config.

    Args:
        schedule: any :class:`~repro.core.schedule.Schedule`.
        config: engine configuration for this session's requests.
        window: default verification window — a point iterable (taken
            literally) or a :class:`Box`.  Omitted, a
            :class:`~repro.core.schedule.MappingSchedule`'s finite
            domain is used (re-derived after every :meth:`edit`, so
            added points are covered); infinite schedules then require
            an explicit window per :meth:`verify` call.
        neighborhood_of: interference map used for verification and
            network construction; defaults to the schedule's own
            ``neighborhood_of`` when it has one (Theorem 1/2 schedules).
        offsets: optional conflict-offset override forwarded to the
            verifier.
    """

    def __init__(self, schedule: Schedule, *,
                 config: EngineConfig | None = None,
                 window: WindowLike | None = None,
                 neighborhood_of: NeighborhoodFn | None = None,
                 offsets: Iterable[IntVec] | None = None) -> None:
        require(hasattr(schedule, "slot_of"),
                "a Session needs a schedule-like object (slot_of)")
        if config is not None and not isinstance(config, EngineConfig):
            raise TypeError(
                f"config must be an EngineConfig or None, "
                f"got {type(config).__name__}")
        self._schedule = schedule
        self._config = config
        self._window = None if window is None else _as_window(window)
        #: True when the window was passed in by the caller; a window
        #: lazily derived from the schedule's domain stays False and is
        #: never transferred by edit()/with_config() — the new session
        #: re-derives it from its own schedule.
        self._window_explicit = window is not None
        if neighborhood_of is None:
            neighborhood_of = getattr(schedule, "neighborhood_of", None)
        self._neighborhood_of = neighborhood_of
        self._offsets = None if offsets is None else list(offsets)
        self._caches: dict[tuple, VerificationCache] = {}
        self._networks: dict[tuple[IntVec, ...], Network] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        #: Lazily-built PeriodicCertificate for lattice-periodic
        #: schedules (None after a failed attempt); ``_served`` flips
        #: after the first certificate answer so the certifying scan's
        #: cost is reported exactly once.
        self._certificate_value: PeriodicCertificate | None = None
        self._certificate_tried = False
        self._certificate_served = False
        #: Per-cache-key count of the edited points inside that window
        #: (keys the edit never touched are absent); the first
        #: cache-served verify of such a window reports the count as
        #: its incremental re-verification cost.
        self._pending_delta: dict[tuple, int] = {}

    # -- builders ------------------------------------------------------
    @classmethod
    def for_prototile(cls, prototile: Prototile, *,
                      config: EngineConfig | None = None,
                      window: WindowLike | None = None,
                      max_period_side: int = 6) -> Session:
        """Session over the Theorem 1 schedule of a neighborhood.

        Raises:
            ValueError: when the prototile admits no tiling (not exact).
        """
        schedule = schedule_from_prototile(prototile,
                                           max_period_side=max_period_side)
        return cls(schedule, config=config, window=window)

    @classmethod
    def for_chebyshev(cls, radius: int = 1, dimension: int = 2, *,
                      config: EngineConfig | None = None,
                      window: WindowLike | None = None) -> Session:
        """Session for the radius-``r`` Chebyshev ball in ``Z^d``."""
        return cls.for_prototile(chebyshev_ball(radius, dimension),
                                 config=config, window=window)

    @classmethod
    def for_tiling(cls, tiling: Tiling, *,
                   config: EngineConfig | None = None,
                   window: WindowLike | None = None,
                   cells: Sequence[IntVec] | None = None) -> Session:
        """Session over the Theorem 1 schedule of an explicit tiling."""
        return cls(schedule_from_tiling(tiling, cells), config=config,
                   window=window)

    @classmethod
    def for_multi_tiling(cls, multi: MultiTiling, *,
                         config: EngineConfig | None = None,
                         window: WindowLike | None = None,
                         cells: Sequence[IntVec] | None = None) -> Session:
        """Session over the Theorem 2 schedule of a multi-prototile tiling."""
        return cls(schedule_from_multi_tiling(multi, cells), config=config,
                   window=window)

    @classmethod
    def for_mapping(cls, assignment: Mapping[Sequence[int], int], *,
                    config: EngineConfig | None = None,
                    neighborhood_of: NeighborhoodFn | None = None,
                    window: WindowLike | None = None,
                    offsets: Iterable[IntVec] | None = None) -> Session:
        """Session over an explicit point -> slot table."""
        schedule = MappingSchedule({as_intvec(p): s
                                    for p, s in assignment.items()})
        return cls(schedule, config=config, window=window,
                   neighborhood_of=neighborhood_of, offsets=offsets)

    # -- accessors -----------------------------------------------------
    @property
    def schedule(self) -> Schedule:
        """The wrapped schedule (shared, not copied)."""
        return self._schedule

    @property
    def num_slots(self) -> int:
        return self._schedule.num_slots

    @property
    def config(self) -> EngineConfig:
        """The config requests run under (the installed default if unset)."""
        return self._config if self._config is not None else default_config()

    @property
    def window(self) -> list[IntVec] | None:
        """The session's default verification window, if any."""
        return None if self._window is None else list(self._window)

    @property
    def cache_stats(self) -> tuple[int, int]:
        """Session-lifetime verification ``(cache_hits, cache_misses)``."""
        return self._cache_hits, self._cache_misses

    @property
    def neighborhood_of(self) -> NeighborhoodFn | None:
        """The interference model requests run under, if any.

        The model is session state, not schedule state — ``save()``
        does not serialize it — so callers reloading a mapping-backed
        schedule pass this to :meth:`load` to restore verification:
        ``Session.load(text, neighborhood_of=old.neighborhood_of)``.
        """
        return self._neighborhood_of

    def with_config(self, config: EngineConfig | None) -> Session:
        """The same schedule and window under a different config."""
        session = Session(self._schedule, config=config,
                          window=self._transferable_window(),
                          neighborhood_of=self._neighborhood_of,
                          offsets=self._offsets)
        return session

    def __repr__(self) -> str:
        window = (f"{len(self._window)} points" if self._window is not None
                  else "none")
        return (f"Session({type(self._schedule).__name__}, "
                f"slots={self._schedule.num_slots}, window={window})")

    # -- internals -----------------------------------------------------
    def _applied(self) -> AbstractContextManager[None]:
        """Context installing this session's explicit config fields."""
        config = self._config
        if config is None or (config.backend is None
                              and config.workers is None
                              and config.on_kernel_failure is None):
            return nullcontext()
        return config.apply()

    def _window_list(self, window: WindowLike | None) -> list[IntVec]:
        if window is not None:
            return _as_window(window)
        if self._window is not None:
            return self._window
        points = getattr(self._schedule, "points", None)
        if points is not None:
            self._window = list(points)
            return self._window
        raise ValueError(
            "this session has no default window; pass window= (a point "
            "iterable or a Box(lo, hi)) to the call or the Session "
            "constructor")

    def _transferable_window(self) -> list[IntVec] | None:
        """The window a derived session may inherit.

        Only a caller-supplied window transfers; one lazily derived
        from the schedule's domain returns ``None`` so the derived
        session re-derives it from *its* schedule — after an edit that
        adds points, the default window must grow with the domain or
        the new sensors would silently escape verification.
        """
        return self._window if self._window_explicit else None

    def _require_neighborhood(self) -> NeighborhoodFn:
        if self._neighborhood_of is None:
            raise ValueError(
                "this schedule carries no interference model; construct "
                "the Session with neighborhood_of=")
        return self._neighborhood_of

    def _certificate(self) -> PeriodicCertificate | None:
        """The schedule's periodicity certificate, built at most once.

        Only a session whose interference model is the schedule's *own*
        bound ``neighborhood_of`` method is eligible — a caller-supplied
        neighborhood function is not what the certifying scan covers.
        Schedules without lattice structure (or with overridden
        neighborhoods) yield ``None`` and the attempt is not repeated.
        """
        if not self._certificate_tried:
            self._certificate_tried = True
            bound_to = getattr(self._neighborhood_of, "__self__", None)
            if bound_to is self._schedule:
                with self._applied():
                    self._certificate_value = certify_schedule(
                        self._schedule)
        return self._certificate_value

    def _verify_from_certificate(
            self, certificate: PeriodicCertificate,
            window: WindowLike | None) -> VerificationReport:
        """Answer a verify from a collision-free certificate, O(1).

        A ``Box`` window is sized arithmetically — never expanded — so
        astronomically large windows stay O(1).  The certifying scan's
        cost (``certificate.checked_points``) is charged to the first
        served verify as a cache miss; every later serve is a free hit.
        """
        if isinstance(window, Box):
            window_size = window.volume()
        else:
            window_size = len(self._window_list(window))
        if not self._certificate_served:
            self._certificate_served = True
            self._cache_misses += 1
            checked = certificate.checked_points
        else:
            self._cache_hits += 1
            checked = 0
        with self._applied():
            backend, workers = active_backend(), shard_workers()
        return VerificationReport(
            collisions=(), window_size=window_size,
            source="certificate", checked_points=checked,
            cache_hits=self._cache_hits,
            cache_misses=self._cache_misses,
            backend=backend, workers=workers)

    # -- lifecycle: assign ---------------------------------------------
    def assign(self, points: Iterable[Sequence[int]]) -> SlotAssignment:
        """Slots for a batch of sensors, served by the bulk engine.

        Semantically ``[schedule.slot_of(p) for p in points]`` — pinned
        bit-identical by the equivalence suite — but dispatched through
        the schedule's vectorized ``slots_of`` under this session's
        config.
        """
        if not hasattr(points, "__len__"):
            points = list(points)
        with self._applied():
            bulk = getattr(self._schedule, "slots_of", None)
            if bulk is not None:
                slots = bulk(points)
            else:
                slots = [self._schedule.slot_of(p) for p in points]
            backend = active_backend()
        return SlotAssignment(points=points, slots=slots,
                              num_slots=self._schedule.num_slots,
                              backend=backend)

    # -- lifecycle: verify ---------------------------------------------
    def verify(self, window: WindowLike | None = None, *,
               offsets: Iterable[IntVec] | None = None,
               use_cache: bool = True,
               stream_chunk: int | None = None) -> VerificationReport:
        """Collision report over a window (cached, incremental-aware).

        The first verify of a window runs the full bulk scan and warms a
        :class:`~repro.core.schedule.VerificationCache`; later verifies
        of the same window answer from the cache, and a session produced
        by :meth:`edit` answers from the incrementally re-verified cache
        (reporting the dirty-set size it cost).  ``use_cache=False``
        bypasses the cache layer entirely and scans fresh — the exact
        :func:`~repro.core.schedule.find_collisions` call.

        Lattice-periodic schedules verified with their own interference
        model short-circuit through a
        :class:`~repro.core.certify.PeriodicCertificate`: once the coset
        fundamental domain certifies collision-free, every congruent
        window — including a :class:`Box` too large to enumerate — is
        answered in O(1) with ``source="certificate"``.  Explicit
        ``offsets`` (here or on the constructor), ``use_cache=False``,
        and ``stream_chunk`` all bypass the certificate.

        ``stream_chunk`` requires a :class:`Box` window and scans it in
        axis-0 slabs of about that many points via
        :func:`~repro.core.certify.stream_box_collisions`, bounding
        memory for out-of-core windows; the result is bit-identical to
        the one-shot scan but is never cached.
        """
        offset_list = self._offsets if offsets is None else list(offsets)
        if stream_chunk is not None:
            if not isinstance(window, Box):
                raise ValueError(
                    "stream_chunk= requires a Box window; point iterables "
                    "are already materialized, so stream a Box(lo, hi) "
                    "instead")
            neighborhood = self._require_neighborhood()
            lo, hi = window._corners()
            volume = window.volume()
            with self._applied():
                collisions = stream_box_collisions(
                    self._schedule, lo, hi, neighborhood,
                    offsets=offset_list, chunk_points=stream_chunk)
                backend, workers = active_backend(), shard_workers()
            return VerificationReport(
                collisions=tuple(collisions), window_size=volume,
                source="scan", checked_points=volume,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                backend=backend, workers=workers)
        if use_cache and offset_list is None:
            certificate = self._certificate()
            if certificate is not None and certificate.collision_free:
                return self._verify_from_certificate(certificate, window)
        window_list = self._window_list(window)
        neighborhood = self._require_neighborhood()
        if not use_cache:
            with self._applied():
                collisions = find_collisions(self._schedule, window_list,
                                             neighborhood, offset_list)
                backend, workers = active_backend(), shard_workers()
            return VerificationReport(
                collisions=tuple(collisions), window_size=len(window_list),
                source="scan", checked_points=len(window_list),
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                backend=backend, workers=workers)
        key = (tuple(window_list),
               None if offset_list is None else tuple(sorted(offset_list)))
        cache = self._caches.get(key)
        with self._applied():
            backend, workers = active_backend(), shard_workers()
            if cache is None:
                self._cache_misses += 1
                cache = VerificationCache(self._schedule, window_list,
                                          neighborhood, offset_list)
                collisions = cache.collisions()
                self._caches[key] = cache
                source = "scan"
                checked = len(window_list)
            else:
                self._cache_hits += 1
                collisions = cache.collisions_for(self._schedule,
                                                  offsets=offset_list)
                delta_points = self._pending_delta.pop(key, None)
                if delta_points is not None:
                    source = "delta"
                    checked = delta_points
                else:
                    source = "cache"
                    checked = 0
        return VerificationReport(
            collisions=tuple(collisions), window_size=len(window_list),
            source=source, checked_points=checked,
            cache_hits=self._cache_hits, cache_misses=self._cache_misses,
            backend=backend, workers=workers)

    def is_collision_free(self, window: WindowLike | None = None) -> bool:
        """Shorthand: ``verify(window).collision_free``."""
        return self.verify(window).collision_free

    # -- lifecycle: edit -----------------------------------------------
    def edit(self, updates: Mapping[Sequence[int], int]) -> Session:
        """A new session whose schedule has some slots reassigned.

        Wraps :meth:`~repro.core.schedule.MappingSchedule.with_updates`:
        the edit produces a :class:`~repro.core.schedule.ScheduleDelta`,
        every warm verification cache is re-verified incrementally over
        the dirty region only, and the *new* session takes ownership of
        the warm caches (the old session rebuilds from scratch if
        verified again).  The receiver is left semantically untouched.

        A default window that was lazily derived from the schedule's
        domain is re-derived by the new session, so an edit that *adds*
        points grows the default verification window with the domain; a
        caller-supplied window is kept as pinned (verification of the
        added points then needs an explicit window).

        Raises:
            TypeError: when the schedule type does not support edits
                (only mapping-backed schedules do).
        """
        with_updates = getattr(self._schedule, "with_updates", None)
        if with_updates is None:
            raise TypeError(
                f"{type(self._schedule).__name__} is immutable; only "
                f"mapping-backed schedules support edit() — restrict the "
                f"schedule to a window first (Session.for_mapping)")
        delta: ScheduleDelta = with_updates(updates)
        session = Session(delta.schedule, config=self._config,
                          window=self._transferable_window(),
                          neighborhood_of=self._neighborhood_of,
                          offsets=self._offsets)
        with session._applied():
            for cache in self._caches.values():
                cache.apply(delta)
        session._caches = self._caches
        self._caches = {}
        session._networks = dict(self._networks)
        session._cache_hits = self._cache_hits
        session._cache_misses = self._cache_misses
        # Each cache only rescanned the changed points inside its own
        # window; per key, add that count to any cost still unreported
        # from earlier edits (the pending counts travel with the caches
        # they describe — the receiver keeps neither).  A window the
        # chain never touched gets no entry: its next verify is a plain
        # cache hit, nothing was re-checked.
        session._pending_delta = self._pending_delta
        self._pending_delta = {}
        for key, cache in session._caches.items():
            inside = len(cache.touched_in_window(delta.changed))
            if inside:
                session._pending_delta[key] = \
                    session._pending_delta.get(key, 0) + inside
        return session

    # -- lifecycle: repair ---------------------------------------------
    def repair(self, window: WindowLike | None = None, *,
               max_rounds: int | None = None) -> RepairReport:
        """Detect and repair collisions by locally rescheduling sensors.

        The self-healing half of the fault model: after byzantine slot
        reports (or any external corruption) break a schedule, ``repair``
        finds the colliding pairs, greedily moves one endpoint of each
        to a slot free within its interference closure, re-verifies
        incrementally through the :class:`VerificationCache`
        dirty-region path, and repeats for up to ``max_rounds`` rounds
        (default ``max(4, num_slots)``).  Each round is an ordinary
        :meth:`edit`, so the warm caches transfer to the repaired
        session and the re-verification cost is the dirty set, not the
        window.

        Only mapping-backed schedules support edits; :meth:`restrict`
        an immutable session to a window first.  The greedy recoloring
        is deterministic (collisions are processed in sorted order, the
        smallest free slot wins), so the repaired schedule is a pure
        function of the corrupted one.

        Raises:
            TypeError: when the schedule type does not support edits.
        """
        if getattr(self._schedule, "with_updates", None) is None:
            raise TypeError(
                f"{type(self._schedule).__name__} is immutable; repair() "
                f"needs an editable mapping-backed schedule — restrict() "
                f"the session to a window first")
        report = self.verify(window)
        faults_found = len(report.collisions)
        session = self
        rounds = 0
        rescheduled = 0
        limit = max(4, self.num_slots) if max_rounds is None else max_rounds
        while report.collisions and rounds < limit:
            updates = session._repair_updates(report.collisions, window)
            if not updates:
                # Greedy recoloring stalled: every slot around the
                # remaining collisions is taken.  Solve the stuck
                # clusters exactly (bounded backtracking, expanding a
                # cluster to pull in wrongly-slotted but locally
                # consistent neighbors when needed).
                updates = session._repair_exact(report.collisions, window)
            if not updates:
                break
            session = session.edit(updates)
            rescheduled += len(updates)
            rounds += 1
            report = session.verify(window)
        return RepairReport(
            session=session, faults_found=faults_found,
            points_rescheduled=rescheduled, rounds=rounds,
            verification_source=report.source,
            repaired=report.collision_free,
            collisions=report.collisions)

    def _repair_updates(self, collisions: Sequence[Collision],
                        window: WindowLike | None) -> dict[IntVec, int]:
        """One greedy recoloring round: victim -> free slot, deterministic.

        For every colliding pair (sorted order) the later endpoint is
        moved to the smallest slot not used inside its interference
        closure — the window points whose ranges intersect the
        victim's, found through a cover index built once per round.  An
        endpoint already moved this round is not moved again, and a
        victim with no free slot falls back to the other endpoint (or
        is left for the next round).
        """
        window_list = self._window_list(window)
        neighborhood = self._require_neighborhood()
        slot_of: dict[IntVec, int] = {
            point: int(slot)
            for point, slot in zip(window_list,
                                   self.assign(window_list).slots)}
        cover: dict[IntVec, list[IntVec]] = {}
        for point in slot_of:
            for cell in neighborhood(point):
                cover.setdefault(cell, []).append(point)
        num_slots = self.num_slots
        updates: dict[IntVec, int] = {}

        def conflicts_by_slot(victim: IntVec) -> dict[int, list[IntVec]]:
            """Interference-closure members of ``victim``, keyed by slot."""
            partners: set[IntVec] = set()
            for cell in neighborhood(victim):
                partners.update(cover.get(cell, ()))
            partners.discard(victim)
            by_slot: dict[int, list[IntVec]] = {}
            for other in sorted(partners):
                by_slot.setdefault(slot_of[other], []).append(other)
            return by_slot

        def move(victim: IntVec, slot: int) -> None:
            updates[victim] = slot
            slot_of[victim] = slot

        for x, y in sorted(collisions):
            if slot_of.get(x) != slot_of.get(y):
                continue  # an earlier move this round already split them
            moved = False
            # First choice: a slot entirely free within the closure.
            for victim in (y, x):
                if victim in updates or victim not in slot_of:
                    continue
                by_slot = conflicts_by_slot(victim)
                free = next((s for s in range(num_slots)
                             if s not in by_slot), None)
                if free is not None:
                    move(victim, free)
                    moved = True
                    break
            if moved:
                continue
            # Fallback: a length-2 chain — the victim takes a slot held
            # by exactly one closure member that can itself move to a
            # slot free in *its* closure.  Resolves the deadlock where
            # every slot around a collision is taken exactly once.
            for victim in (y, x):
                if moved or victim in updates or victim not in slot_of:
                    continue
                by_slot = conflicts_by_slot(victim)
                previous = slot_of[victim]
                for slot in range(num_slots):
                    occupants = by_slot.get(slot, [])
                    if slot == previous or len(occupants) != 1:
                        continue
                    blocker = occupants[0]
                    if blocker in updates:
                        continue
                    move(victim, slot)
                    blocker_slots = conflicts_by_slot(blocker)
                    free = next((s for s in range(num_slots)
                                 if s not in blocker_slots), None)
                    if free is None:
                        slot_of[victim] = previous
                        del updates[victim]
                        continue
                    move(blocker, free)
                    moved = True
                    break
        return updates

    #: Cluster-size / search-node bounds for the exact repair fallback.
    _REPAIR_MAX_CLUSTER = 96
    _REPAIR_MAX_NODES = 200_000

    def _repair_exact(self, collisions: Sequence[Collision],
                      window: WindowLike | None) -> dict[IntVec, int]:
        """Exact repair of stuck collision clusters, deterministic.

        Groups the colliding endpoints into clusters (closure-adjacent
        components) and solves each as a small constraint problem: find
        slots for the cluster members that conflict neither with the
        fixed points outside the cluster nor with each other, preferring
        each member's current slot so the repair stays minimal.  When a
        cluster is infeasible as-is — the classic byzantine signature is
        a victim whose true slot is squatted by a wrongly-slotted but
        locally consistent neighbor — the cluster is expanded by one
        closure ring and re-solved, up to a bounded size.
        """
        window_list = self._window_list(window)
        neighborhood = self._require_neighborhood()
        slot_of: dict[IntVec, int] = {
            point: int(slot)
            for point, slot in zip(window_list,
                                   self.assign(window_list).slots)}
        cover: dict[IntVec, list[IntVec]] = {}
        for point in slot_of:
            for cell in neighborhood(point):
                cover.setdefault(cell, []).append(point)
        num_slots = self.num_slots

        closure_cache: dict[IntVec, list[IntVec]] = {}

        def closure(point: IntVec) -> list[IntVec]:
            cached = closure_cache.get(point)
            if cached is None:
                partners: set[IntVec] = set()
                for cell in neighborhood(point):
                    partners.update(cover.get(cell, ()))
                partners.discard(point)
                cached = sorted(partners)
                closure_cache[point] = cached
            return cached

        endpoints = sorted({p for pair in collisions for p in pair
                            if p in slot_of})
        clusters: list[list[IntVec]] = []
        unassigned = set(endpoints)
        for start in endpoints:
            if start not in unassigned:
                continue
            cluster = []
            queue = [start]
            unassigned.discard(start)
            while queue:
                point = queue.pop()
                cluster.append(point)
                for other in closure(point):
                    if other in unassigned:
                        unassigned.discard(other)
                        queue.append(other)
            clusters.append(sorted(cluster))

        updates: dict[IntVec, int] = {}
        for cluster in clusters:
            members = list(cluster)
            solution = None
            while solution is None:
                solution = self._solve_cluster(members, slot_of, closure,
                                               num_slots)
                if solution is not None:
                    break
                ring = sorted({q for p in members for q in closure(p)}
                              - set(members))
                if not ring or (len(members) + len(ring)
                                > self._REPAIR_MAX_CLUSTER):
                    break
                members = sorted(set(members) | set(ring))
            if solution is not None:
                for point, slot in solution.items():
                    if slot != slot_of[point]:
                        updates[point] = slot
                        slot_of[point] = slot
        return updates

    def _solve_cluster(self, members: Sequence[IntVec],
                       slot_of: Mapping[IntVec, int],
                       closure: Callable[[IntVec], list[IntVec]],
                       num_slots: int) -> dict[IntVec, int] | None:
        """Backtracking slot search for one cluster, or ``None``.

        Members are assigned most-constrained-first; candidate slots
        try each member's current slot before the others, so a feasible
        cluster keeps as many current slots as possible.  The search is
        bounded by ``_REPAIR_MAX_NODES`` visited nodes — determinism
        over completeness.
        """
        member_set = set(members)
        domains: dict[IntVec, list[int]] = {}
        for point in members:
            fixed = {slot_of[q] for q in closure(point)
                     if q not in member_set}
            current = slot_of[point]
            candidates = [s for s in range(num_slots) if s not in fixed]
            candidates.sort(key=lambda s: (s != current, s))
            if not candidates:
                return None
            domains[point] = candidates
        order = sorted(members, key=lambda p: (len(domains[p]), p))
        assigned: dict[IntVec, int] = {}
        nodes = 0

        def backtrack(depth: int) -> bool:
            nonlocal nodes
            if depth == len(order):
                return True
            point = order[depth]
            neighbors = [q for q in closure(point) if q in member_set]
            for slot in domains[point]:
                nodes += 1
                if nodes > self._REPAIR_MAX_NODES:
                    return False
                if any(assigned.get(q) == slot for q in neighbors):
                    continue
                assigned[point] = slot
                if backtrack(depth + 1):
                    return True
                del assigned[point]
            return False

        if not backtrack(0):
            return None
        return dict(assigned)

    def restrict(self, window: WindowLike | None = None) -> Session:
        """An editable mapping-backed session over a finite window.

        Freezes this schedule's slots over the window into an explicit
        :class:`~repro.core.schedule.MappingSchedule` — the form that
        supports :meth:`edit` — while keeping this session's
        interference model, conflict offsets and config, so a verify of
        the same window answers identically.  Theorem 1/2 sessions are
        immutable; churn workloads restrict first, then edit.
        """
        window_list = self._window_list(window)
        slots = self.assign(window_list).slots
        assignment = {point: int(slot)
                      for point, slot in zip(window_list, slots)}
        return Session(MappingSchedule(assignment), config=self._config,
                       window=window_list,
                       neighborhood_of=self._neighborhood_of,
                       offsets=self._offsets)

    # -- lifecycle: simulate -------------------------------------------
    def network(self, window: WindowLike | None = None) -> Network:
        """The sensor network over a window, built once per window.

        Theorem 1/2 schedules derive interference from their prototile
        or deployment; other schedules use the session's
        ``neighborhood_of``.
        """
        window_list = self._window_list(window)
        key = tuple(window_list)
        network = self._networks.get(key)
        if network is None:
            schedule = self._schedule
            if isinstance(schedule, TilingSchedule):
                network = Network.homogeneous(window_list, schedule.prototile)
            elif isinstance(schedule, MultiTilingSchedule):
                network = Network.from_multi_tiling(window_list,
                                                    schedule.multi)
            else:
                neighborhood = self._require_neighborhood()
                network = Network(SensorNode(p, neighborhood(p))
                                  for p in window_list)
            self._networks[key] = network
        return network

    def simulate(self, protocol: MACProtocol | str, slots: int, *,
                 window: WindowLike | None = None,
                 network: Network | None = None,
                 packet_interval: int | None = None,
                 seed: int | None = None,
                 energy_model: EnergyModel = UNIT_TX_MODEL,
                 bulk_decisions: bool | None = None,
                 **protocol_params: Any) -> SimulationMetrics:
        """Run the slotted broadcast simulator over this session's window.

        ``protocol`` is a constructed :class:`MACProtocol` or a
        registered name — ``"schedule"`` resolves to a
        :class:`~repro.net.protocols.ScheduleMAC` over *this session's
        schedule*, and names like ``"aloha"`` take their parameters as
        extra keyword arguments (``simulate("aloha", 90, p=0.2)``).
        ``packet_interval`` defaults to one packet per schedule round.

        Returns the same :class:`SimulationMetrics` the legacy
        ``repro.net.simulate`` produces for the same inputs, bit for bit.
        """
        if network is None:
            network = self.network(window)
        elif window is not None:
            raise ValueError("pass either window= or network=, not both")
        if isinstance(protocol, str):
            protocol = make_protocol(protocol, positions=network.positions,
                                     schedule=self._schedule,
                                     **protocol_params)
        elif protocol_params:
            raise TypeError(
                f"protocol parameters {sorted(protocol_params)} are only "
                f"accepted when the protocol is named by string")
        if packet_interval is None:
            packet_interval = self._schedule.num_slots
        simulator = BroadcastSimulator(
            network, protocol, packet_interval=packet_interval, seed=seed,
            energy_model=energy_model, bulk_decisions=bulk_decisions,
            config=self._config)
        return simulator.run(slots)

    # -- lifecycle: save / load ----------------------------------------
    def save(self, path: os.PathLike | None = None) -> str:
        """Serialize the schedule to JSON (optionally writing a file).

        Round-trips through :mod:`repro.core.serialize`; the window,
        config and caches are session state, not schedule state, and are
        not serialized.
        """
        text = schedule_to_json(self._schedule)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    @classmethod
    def load(cls, source: str | os.PathLike, *,
             config: EngineConfig | None = None,
             window: WindowLike | None = None,
             neighborhood_of: NeighborhoodFn | None = None,
             offsets: Iterable[IntVec] | None = None) -> Session:
        """Rebuild a session from :meth:`save` output.

        ``source`` is the JSON text itself, or an :class:`os.PathLike`
        pointing at a file of it (a plain ``str`` is always treated as
        JSON — wrap file names in :class:`pathlib.Path`).

        Raises:
            CorruptSessionError: on truncated or garbage input — one
                typed error carrying the file path (for path sources)
                and the reason, instead of the raw ``JSONDecodeError``
                / ``KeyError`` the parser would leak.
        """
        if isinstance(source, os.PathLike):
            path = str(os.fspath(source))
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
        else:
            path = None
            text = source
        return cls(schedule_from_json(text, path=path), config=config,
                   window=window, neighborhood_of=neighborhood_of,
                   offsets=offsets)
