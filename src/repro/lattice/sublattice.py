"""Sublattices of ``Z^d`` and their quotient groups.

A sublattice ``T`` of finite index is the natural home of a lattice tiling:
the translation set of a tiling by a prototile ``N`` is (in the simplest
and most useful case) a sublattice with ``[Z^d : T] = |N|`` whose cosets
are represented exactly by the elements of ``N``.

The class wraps :class:`repro.utils.intlin.CosetSpace`, adding the
lattice-level vocabulary used by the tiling and scheduling layers.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from functools import lru_cache

from repro.utils.intlin import (
    CosetSpace,
    IntMatrix,
    determinant,
    enumerate_hnf_matrices,
    mat_vec,
    matrix_columns,
    matrix_from_columns,
)
from repro.utils.vectors import IntVec, as_intvec
from repro.utils.validation import require, require_positive

__all__ = ["Sublattice", "all_sublattices_of_index", "diagonal_sublattice"]


class Sublattice:
    """A finite-index sublattice of ``Z^d``.

    Args:
        generators: ``d`` integer generator vectors (each of length ``d``)
            that must be linearly independent.

    Two ``Sublattice`` objects compare equal iff they contain the same
    vectors (their Hermite normal forms coincide), regardless of the
    generators used to construct them.
    """

    def __init__(self, generators: Sequence[Sequence[int]]):
        vectors = [as_intvec(g) for g in generators]
        require(len(vectors) > 0, "a sublattice needs at least one generator")
        dimension = len(vectors[0])
        require(len(vectors) == dimension,
                "need exactly d generators for a finite-index sublattice of Z^d")
        matrix = matrix_from_columns(vectors)
        require(determinant(matrix) != 0, "generators must be linearly independent")
        self._cosets = CosetSpace(matrix)
        self.dimension = dimension

    # ------------------------------------------------------------------
    @property
    def index(self) -> int:
        """Group index ``[Z^d : T]`` (the absolute determinant)."""
        return self._cosets.index

    @property
    def hnf_matrix(self) -> IntMatrix:
        """Canonical Hermite-normal-form generator matrix (columns)."""
        return [list(row) for row in self._cosets.hnf]

    @property
    def basis(self) -> list[IntVec]:
        """Canonical basis vectors (columns of the HNF)."""
        return matrix_columns(self._cosets.hnf)

    def contains(self, vector: Sequence[int]) -> bool:
        """Membership test for an integer vector."""
        return self._cosets.contains(vector)

    def canonical_representative(self, vector: Sequence[int]) -> IntVec:
        """Canonical representative of ``vector + T`` (HNF box form)."""
        return self._cosets.canonical(vector)

    def same_coset(self, a: Sequence[int], b: Sequence[int]) -> bool:
        """True when ``a - b`` belongs to the sublattice."""
        return self._cosets.same_coset(a, b)

    def coset_representatives(self) -> Iterator[IntVec]:
        """Iterate one canonical representative per coset (``index`` many)."""
        yield from self._cosets.representatives()

    def quotient_invariants(self) -> list[int]:
        """Invariant factors of ``Z^d / T`` (nontrivial entries of the SNF).

        E.g. the index-4 sublattice ``2Z x 2Z`` has invariants ``[2, 2]``
        (Klein group) while ``Z x 4Z`` has ``[4]`` (cyclic).
        """
        return self._cosets.invariant_factors()

    def points_near_origin(self, radius: int) -> list[IntVec]:
        """All sublattice vectors in the Chebyshev box ``[-radius, radius]^d``.

        Enumerates integer combinations of the HNF basis within a
        certified coefficient bound, then filters by the box.
        """
        require_positive(radius, "radius")
        basis = self.basis
        # Coefficient of basis vector i only affects coordinates >= i
        # (lower-triangular), so bound each coefficient by box / diagonal.
        import itertools
        bounds = []
        for i, vector in enumerate(basis):
            diag = vector[i]
            bounds.append(radius // diag + 1)
        result = []
        for coeffs in itertools.product(
                *(range(-b, b + 1) for b in bounds)):
            vector = mat_vec(self._cosets.hnf, coeffs)
            if all(abs(x) <= radius for x in vector):
                result.append(vector)
        return result

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sublattice):
            return NotImplemented
        return self._cosets.hnf == other._cosets.hnf

    def __hash__(self) -> int:
        return hash(tuple(tuple(row) for row in self._cosets.hnf))

    def __repr__(self) -> str:
        basis = ", ".join(str(v) for v in self.basis)
        return f"Sublattice(basis=[{basis}], index={self.index})"


# Exactness checks and tiling searches re-enumerate the same
# (dimension, index) families over and over (every prototile of size m
# asks for the index-m sublattices), so the enumeration is memoized.
# Sublattice objects are immutable, making the shared tuples safe; the
# bound keeps a pathological sweep over huge indices from pinning every
# family in memory.
@lru_cache(maxsize=128)
def _sublattices_of_index(dimension: int, index: int) -> tuple[Sublattice, ...]:
    return tuple(Sublattice(matrix_columns(hnf))
                 for hnf in enumerate_hnf_matrices(dimension, index))


def all_sublattices_of_index(dimension: int, index: int) -> Iterator[Sublattice]:
    """Every sublattice of ``Z^dimension`` with the given index.

    For ``dimension == 2`` there are ``sigma(index)`` of them (sum of
    divisors); this enumeration is the engine of the exactness decision
    procedure for lattice tilings (:mod:`repro.tiles.exactness`).  The
    family is computed once per ``(dimension, index)`` and served from a
    bounded cache afterwards.
    """
    yield from _sublattices_of_index(dimension, index)


def diagonal_sublattice(periods: Sequence[int]) -> Sublattice:
    """The sublattice ``p_1 Z x ... x p_d Z`` (axis-aligned periods)."""
    for p in periods:
        require_positive(p, "period")
    dimension = len(periods)
    generators = [
        tuple(periods[j] if i == j else 0 for i in range(dimension))
        for j in range(dimension)
    ]
    return Sublattice(generators)
