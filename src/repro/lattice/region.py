"""Finite regions of lattice points: windows, boxes and balls.

The paper's schedules are defined on the infinite lattice; its conclusions
study the *restriction* to a finite subset ``D``.  A :class:`Region` is any
finite set of coordinate vectors with convenience constructors for the
shapes used in experiments (axis-aligned boxes, Chebyshev and Euclidean
balls).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.lattice.lattice import Lattice
from repro.utils.vectors import (
    IntVec,
    as_intvec,
    bounding_box,
    box_points,
    chebyshev_distance,
    translate_set,
    vadd,
)
from repro.utils.validation import require, require_nonnegative

__all__ = ["Region", "box_region", "chebyshev_ball_region", "euclidean_ball_region"]


class Region:
    """An immutable finite set of lattice coordinate vectors."""

    def __init__(self, points: Iterable[Sequence[int]]):
        cells = frozenset(as_intvec(p) for p in points)
        require(len(cells) > 0, "a region must contain at least one point")
        dimension = len(next(iter(cells)))
        for cell in cells:
            require(len(cell) == dimension, "region points have mixed dimensions")
        self._points = cells
        self.dimension = dimension

    @property
    def points(self) -> frozenset[IntVec]:
        """The points of the region as a frozen set."""
        return self._points

    def __iter__(self) -> Iterator[IntVec]:
        return iter(sorted(self._points))

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, point: Sequence[int]) -> bool:
        return tuple(point) in self._points

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def translated(self, offset: Sequence[int]) -> Region:
        """The region translated by an integer offset."""
        return Region(translate_set(self._points, as_intvec(offset)))

    def union(self, other: Region) -> Region:
        """Set union of two regions (dimensions must agree)."""
        require(self.dimension == other.dimension,
                "cannot union regions of different dimensions")
        return Region(self._points | other._points)

    def intersection(self, other: Region) -> Region:
        """Set intersection (must be non-empty)."""
        return Region(self._points & other._points)

    def contains_translate_of(self, pattern: Iterable[IntVec]) -> bool:
        """True when some translate of ``pattern`` lies inside the region.

        This implements the conclusions' optimality criterion: the
        restricted schedule remains optimal when ``D`` contains a translate
        of ``N1 + N1``.
        """
        pattern_list = [as_intvec(p) for p in pattern]
        require(len(pattern_list) > 0, "pattern must not be empty")
        anchor = pattern_list[0]
        offsets = [tuple(x - a for x, a in zip(p, anchor)) for p in pattern_list]
        for base in self._points:
            if all(vadd(base, offset) in self._points for offset in offsets):
                return True
        return False

    def bounding_box(self) -> tuple[IntVec, IntVec]:
        """Tight axis-aligned bounding box ``(lo, hi)``."""
        return bounding_box(self._points)

    def __repr__(self) -> str:
        lo, hi = self.bounding_box()
        return f"Region({len(self)} points, box {lo}..{hi})"


def box_region(lo: Sequence[int], hi: Sequence[int]) -> Region:
    """All lattice points in the closed axis-aligned box ``[lo, hi]``."""
    return Region(box_points(as_intvec(lo), as_intvec(hi)))


def chebyshev_ball_region(radius: int, dimension: int = 2,
                          center: Sequence[int] | None = None) -> Region:
    """Chebyshev ball ``{x : max_i |x_i - c_i| <= radius}``."""
    require_nonnegative(radius, "radius")
    if center is None:
        center = (0,) * dimension
    center = as_intvec(center)
    lo = tuple(c - radius for c in center)
    hi = tuple(c + radius for c in center)
    points = [p for p in box_points(lo, hi)
              if chebyshev_distance(p, center) <= radius]
    return Region(points)


def euclidean_ball_region(lattice: Lattice, radius: float,
                          center: Sequence[int] | None = None) -> Region:
    """Lattice points within real Euclidean distance ``radius`` of a point.

    Uses the lattice embedding, so the same call produces 5 points on the
    square lattice (radius 1) and 7 on the hexagonal lattice.
    """
    if center is None:
        center = (0,) * lattice.dimension
    return Region(lattice.points_within_distance(radius, as_intvec(center)))
