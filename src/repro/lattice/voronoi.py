"""Voronoi cells of 2-D lattices and quasi-polyform regions (Figure 4).

Section 3 of the paper converts lattice tilings into tilings of ``R^d`` by
taking ``K`` = union of closed Voronoi regions about the points of the
prototile ``N``; the translates ``t + K`` with ``t`` in the translation set
then tile the plane.  For the square lattice the Voronoi cell is a unit
square (tiles ``K`` are *quasi-polyominoes*); for the hexagonal lattice it
is a regular hexagon (*quasi-polyhexes*).

The computation here is classical: reduce the basis (Lagrange–Gauss), take
the at most six relevant vectors, and intersect the half-planes
``{x : <x, v> <= <v, v>/2}``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.lattice.lattice import Lattice
from repro.utils.vectors import IntVec
from repro.utils.validation import require

__all__ = [
    "reduced_basis_2d",
    "relevant_vectors_2d",
    "voronoi_cell_2d",
    "polygon_area",
    "point_in_polygon",
    "VoronoiCell",
    "quasi_polyform_region",
]

_EPS = 1e-9


def reduced_basis_2d(lattice: Lattice) -> tuple[np.ndarray, np.ndarray]:
    """Lagrange–Gauss reduced basis of a 2-D lattice.

    Returns two real vectors ``(b1, b2)`` spanning the lattice with
    ``|b1| <= |b2|`` and ``|<b1, b2>| <= |b1|^2 / 2`` — the 2-D analogue of
    LLL, for which the reduction is exact and terminates quickly.
    """
    require(lattice.dimension == 2, "reduced_basis_2d requires a 2-D lattice")
    b1 = np.asarray(lattice.basis_vectors[0], dtype=float)
    b2 = np.asarray(lattice.basis_vectors[1], dtype=float)
    if np.dot(b1, b1) > np.dot(b2, b2):
        b1, b2 = b2, b1
    while True:
        mu = round(float(np.dot(b1, b2) / np.dot(b1, b1)))
        b2 = b2 - mu * b1
        if np.dot(b2, b2) >= np.dot(b1, b1) - _EPS:
            return b1, b2
        b1, b2 = b2, b1


def relevant_vectors_2d(lattice: Lattice) -> list[np.ndarray]:
    """The Voronoi-relevant vectors of a 2-D lattice.

    For a reduced basis ``b1, b2`` the relevant vectors are among
    ``+-b1, +-b2, +-(b1 + b2), +-(b1 - b2)``; a candidate is relevant iff
    it is a strict local minimum of the norm in its coset of ``2L`` —
    equivalently (and robustly for our use), iff its half-plane actually
    supports an edge of the cell.  We return the candidate set; redundant
    half-planes are harmless for clipping.
    """
    b1, b2 = reduced_basis_2d(lattice)
    candidates = [b1, b2, b1 + b2, b1 - b2]
    vectors: list[np.ndarray] = []
    for v in candidates:
        if float(np.dot(v, v)) > _EPS:
            vectors.append(v)
            vectors.append(-v)
    return vectors


def _clip_polygon_halfplane(polygon: list[np.ndarray], normal: np.ndarray,
                            offset: float) -> list[np.ndarray]:
    """Clip a convex polygon against the half-plane ``<x, normal> <= offset``."""
    if not polygon:
        return []
    result: list[np.ndarray] = []
    count = len(polygon)
    for i in range(count):
        current = polygon[i]
        nxt = polygon[(i + 1) % count]
        current_inside = float(np.dot(current, normal)) <= offset + _EPS
        next_inside = float(np.dot(nxt, normal)) <= offset + _EPS
        if current_inside:
            result.append(current)
        if current_inside != next_inside:
            direction = nxt - current
            denom = float(np.dot(direction, normal))
            if abs(denom) > _EPS:
                t = (offset - float(np.dot(current, normal))) / denom
                result.append(current + t * direction)
    return result


def polygon_area(vertices: Sequence[Sequence[float]]) -> float:
    """Area of a simple polygon via the shoelace formula."""
    if len(vertices) < 3:
        return 0.0
    area = 0.0
    count = len(vertices)
    for i in range(count):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % count]
        area += x1 * y2 - x2 * y1
    return abs(area) / 2.0


def point_in_polygon(point: Sequence[float],
                     vertices: Sequence[Sequence[float]],
                     tolerance: float = _EPS) -> bool:
    """Point-in-convex-polygon test (boundary counts as inside).

    Assumes the vertices are in counterclockwise or clockwise order, as
    produced by :func:`voronoi_cell_2d`.
    """
    count = len(vertices)
    if count < 3:
        return False
    sign = 0
    px, py = float(point[0]), float(point[1])
    for i in range(count):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % count]
        cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
        if cross > tolerance:
            if sign < 0:
                return False
            sign = 1
        elif cross < -tolerance:
            if sign > 0:
                return False
            sign = -1
    return True


class VoronoiCell:
    """The closed Voronoi cell of a lattice point, as a convex polygon.

    Attributes:
        center: real position of the lattice point the cell surrounds.
        vertices: polygon vertices in counterclockwise order.
    """

    def __init__(self, center: Sequence[float],
                 vertices: Sequence[Sequence[float]]):
        self.center = tuple(float(x) for x in center)
        self.vertices = [tuple(float(x) for x in v) for v in vertices]

    @property
    def area(self) -> float:
        """Polygon area; equals the lattice covolume."""
        return polygon_area(self.vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges (4 for the square lattice, 6 for hexagonal)."""
        return len(self.vertices)

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when the (closed) cell contains the real point."""
        return point_in_polygon(point, self.vertices)

    def contains_disk(self, center: Sequence[float], radius: float) -> bool:
        """True when a disk fits entirely inside the (closed) cell.

        Used by the mobile-sensor rule of Section 5 ("the interference
        range of s fits within the tile of p").
        """
        cx, cy = float(center[0]), float(center[1])
        count = len(self.vertices)
        if not self.contains_point((cx, cy)):
            return False
        for i in range(count):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % count]
            # Distance from the disk center to the supporting line of edge i.
            edge = np.array([x2 - x1, y2 - y1])
            length = float(np.linalg.norm(edge))
            if length < _EPS:
                continue
            distance = abs((x2 - x1) * (y1 - cy) - (x1 - cx) * (y2 - y1)) / length
            if distance < radius - _EPS:
                return False
        return True

    def translated(self, offset: Sequence[float]) -> VoronoiCell:
        """The cell translated by a real offset vector."""
        ox, oy = float(offset[0]), float(offset[1])
        return VoronoiCell(
            (self.center[0] + ox, self.center[1] + oy),
            [(x + ox, y + oy) for x, y in self.vertices],
        )

    def __repr__(self) -> str:
        return (f"VoronoiCell(center={self.center}, "
                f"edges={self.num_edges}, area={self.area:.6f})")


def voronoi_cell_2d(lattice: Lattice,
                    point: IntVec = (0, 0)) -> VoronoiCell:
    """Compute the Voronoi cell of a 2-D lattice point (Figure 4).

    The cell about the origin is the intersection of the half-planes
    determined by the relevant vectors; cells about other points are
    translates (lattices are vertex-transitive).
    """
    require(lattice.dimension == 2, "voronoi_cell_2d requires a 2-D lattice")
    vectors = relevant_vectors_2d(lattice)
    # Start from a box certainly containing the cell.
    bound = 2.0 * max(float(np.linalg.norm(v)) for v in vectors)
    polygon = [
        np.array([-bound, -bound]),
        np.array([bound, -bound]),
        np.array([bound, bound]),
        np.array([-bound, bound]),
    ]
    for v in vectors:
        polygon = _clip_polygon_halfplane(polygon, v, float(np.dot(v, v)) / 2.0)
    # Remove duplicate vertices produced by touching half-planes.
    cleaned: list[np.ndarray] = []
    for vertex in polygon:
        if not cleaned or float(np.linalg.norm(vertex - cleaned[-1])) > 1e-7:
            cleaned.append(vertex)
    if len(cleaned) > 1 and float(np.linalg.norm(cleaned[0] - cleaned[-1])) <= 1e-7:
        cleaned.pop()
    center = lattice.to_real(point)
    offset = np.asarray(center)
    return VoronoiCell(center, [tuple(v + offset) for v in cleaned])


def quasi_polyform_region(lattice: Lattice,
                          points: Iterable[IntVec]) -> list[VoronoiCell]:
    """The quasi-polyform ``K`` = union of Voronoi cells about ``points``.

    Returns one :class:`VoronoiCell` per lattice point; their union is the
    plane tile of Section 3 (a quasi-polyomino on ``L_S``, a quasi-polyhex
    on ``L_H``).  Total area is ``|points| * covolume``.
    """
    base = voronoi_cell_2d(lattice)
    cells = []
    for point in points:
        center = lattice.to_real(point)
        offset = (center[0] - base.center[0], center[1] - base.center[1])
        cells.append(base.translated(offset))
    return cells


def hexagon_expected_area() -> float:
    """Closed-form area of the hexagonal lattice's Voronoi cell, sqrt(3)/2."""
    return math.sqrt(3.0) / 2.0
