"""Euclidean lattices: discrete full-rank subgroups of ``R^d``.

A :class:`Lattice` is specified by an embedding basis ``{v_1, ..., v_d}``
(linearly independent over the reals).  Sensor positions are *integer
coordinate vectors* ``a`` with real position ``sum_k a_k v_k``; all
combinatorics (prototiles, tilings, schedules) happen on the integer
coordinates, which makes the machinery identical for the square lattice,
the hexagonal lattice, and any other lattice — exactly the abstraction the
paper uses ("the group L is isomorphic to the additive abelian group Z^d").
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence

import numpy as np

from repro.utils.vectors import IntVec, as_intvec
from repro.utils.validation import require, require_dimension, require_positive

__all__ = ["Lattice"]


class Lattice:
    """A full-rank Euclidean lattice ``L = B Z^d`` with basis matrix ``B``.

    Args:
        basis: sequence of ``d`` basis vectors, each of length ``d``.  The
            vectors must be linearly independent.

    Attributes:
        dimension: ambient (and lattice) dimension ``d``.
        name: optional human-readable name (e.g. ``"square"``).
    """

    def __init__(self, basis: Sequence[Sequence[float]], name: str = "lattice"):
        matrix = np.array(basis, dtype=float).T  # columns are basis vectors
        require(matrix.ndim == 2 and matrix.shape[0] == matrix.shape[1],
                "basis must be a square set of vectors")
        determinant = float(np.linalg.det(matrix))
        require(abs(determinant) > 1e-12,
                "basis vectors must be linearly independent")
        self._basis = matrix
        self._inverse = np.linalg.inv(matrix)
        self.dimension = matrix.shape[0]
        self.name = name

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def basis_vectors(self) -> list[tuple[float, ...]]:
        """The basis vectors ``v_1, ..., v_d`` as tuples of floats."""
        return [tuple(float(x) for x in self._basis[:, j])
                for j in range(self.dimension)]

    @property
    def basis_matrix(self) -> np.ndarray:
        """Copy of the ``d x d`` basis matrix (columns are basis vectors)."""
        return self._basis.copy()

    @property
    def gram_matrix(self) -> np.ndarray:
        """Gram matrix ``B^T B`` of inner products of basis vectors."""
        return self._basis.T @ self._basis

    @property
    def covolume(self) -> float:
        """Volume of a fundamental domain, ``|det B|``.

        Equals the area/volume of the Voronoi cell about any lattice point
        (used to cross-check :mod:`repro.lattice.voronoi`).
        """
        return abs(float(np.linalg.det(self._basis)))

    def to_real(self, coordinates: Sequence[int]) -> tuple[float, ...]:
        """Real position of the lattice point with the given coordinates."""
        require_dimension(coordinates, self.dimension, "coordinates")
        return tuple(float(x) for x in
                     self._basis @ np.asarray(coordinates, dtype=float))

    def to_coordinates(self, position: Sequence[float]) -> tuple[float, ...]:
        """Real-valued lattice coordinates of an arbitrary real position."""
        require_dimension(position, self.dimension, "position")
        return tuple(float(x) for x in
                     self._inverse @ np.asarray(position, dtype=float))

    def contains(self, position: Sequence[float], tolerance: float = 1e-9) -> bool:
        """True when a real position is (numerically) a lattice point."""
        coords = self.to_coordinates(position)
        return all(abs(c - round(c)) <= tolerance for c in coords)

    def coordinates_of(self, position: Sequence[float],
                       tolerance: float = 1e-9) -> IntVec:
        """Integer coordinates of a real position that is a lattice point.

        Raises:
            ValueError: if the position is not a lattice point.
        """
        coords = self.to_coordinates(position)
        rounded = tuple(round(c) for c in coords)
        if any(abs(c - r) > tolerance for c, r in zip(coords, rounded)):
            raise ValueError(f"position {position!r} is not a lattice point")
        return as_intvec(rounded)

    # ------------------------------------------------------------------
    # Metric queries
    # ------------------------------------------------------------------
    def distance(self, a: Sequence[int], b: Sequence[int]) -> float:
        """Euclidean distance between two lattice points (by coordinates)."""
        pa = np.asarray(self.to_real(a))
        pb = np.asarray(self.to_real(b))
        return float(np.linalg.norm(pa - pb))

    def norm(self, coordinates: Sequence[int]) -> float:
        """Euclidean length of a lattice vector (by coordinates)."""
        return float(np.linalg.norm(self._basis @ np.asarray(coordinates, float)))

    def minimal_distance(self) -> float:
        """Length of a shortest nonzero lattice vector.

        Found by searching coordinate vectors in a Chebyshev box whose
        radius is certified by the basis geometry: any vector with some
        ``|a_k| > r`` has length at least ``r / ||row_k(B^-1)||``, so a box
        of radius ``r`` suffices once that bound exceeds the best candidate
        found so far.
        """
        inverse_row_norms = np.linalg.norm(self._inverse, axis=0)
        best = min(self.norm(e) for e in _unit_vectors(self.dimension))
        radius = 1
        while True:
            for coords in itertools.product(range(-radius, radius + 1),
                                            repeat=self.dimension):
                if all(c == 0 for c in coords):
                    continue
                best = min(best, self.norm(coords))
            guaranteed = (radius + 1) / float(np.max(inverse_row_norms))
            if guaranteed >= best:
                return best
            radius += 1

    def nearest_point(self, position: Sequence[float]) -> IntVec:
        """Coordinates of a nearest lattice point to a real position.

        Uses Babai rounding refined by a local search over the ``4^d``
        surrounding candidates (coordinate offsets ``-1..2`` around the
        floor), which is exact for the moderately skewed 2-D/3-D bases
        this library works with: the nearest point of a basis whose
        Gram matrix is within Lagrange reduction of diagonal lies in
        that candidate box.
        """
        coords = self.to_coordinates(position)
        base = [math.floor(c) for c in coords]
        target = np.asarray(position, dtype=float)
        best_point: IntVec | None = None
        best_distance = math.inf
        for offset in itertools.product((-1, 0, 1, 2),
                                        repeat=self.dimension):
            candidate = tuple(b + o for b, o in zip(base, offset))
            distance = float(np.linalg.norm(
                self._basis @ np.asarray(candidate, float) - target))
            if distance < best_distance:
                best_distance = distance
                best_point = candidate
        assert best_point is not None
        return best_point

    # ------------------------------------------------------------------
    # Point generation
    # ------------------------------------------------------------------
    def points_in_box(self, radius: int) -> Iterator[IntVec]:
        """All coordinate vectors in the Chebyshev box ``[-radius, radius]^d``."""
        require_positive(radius, "radius")
        yield from itertools.product(range(-radius, radius + 1),
                                     repeat=self.dimension)

    def points_within_distance(self, radius: float,
                               center: Sequence[int] | None = None
                               ) -> list[IntVec]:
        """Lattice points within Euclidean distance ``radius`` of a point.

        The search box is certified by the operator norm of the inverse
        basis: any point at coordinate-distance greater than
        ``radius * max_row_norm(B^-1)`` is farther than ``radius``.
        """
        require(radius >= 0, "radius must be nonnegative")
        if center is None:
            center = (0,) * self.dimension
        bound = int(math.ceil(radius * float(
            np.max(np.linalg.norm(self._inverse, axis=1))))) + 1
        center_real = np.asarray(self.to_real(center))
        result = []
        for offset in itertools.product(range(-bound, bound + 1),
                                        repeat=self.dimension):
            point = tuple(c + o for c, o in zip(center, offset))
            position = self._basis @ np.asarray(point, dtype=float)
            if float(np.linalg.norm(position - center_real)) <= radius + 1e-9:
                result.append(point)
        return result

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        vectors = ", ".join(
            "(" + ", ".join(f"{x:g}" for x in v) + ")" for v in self.basis_vectors
        )
        return f"Lattice({self.name!r}, basis=[{vectors}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lattice):
            return NotImplemented
        return (self.dimension == other.dimension
                and np.allclose(self._basis, other._basis))

    def __hash__(self) -> int:
        return hash((self.dimension, self.name,
                     tuple(np.round(self._basis, 12).flatten())))


def _unit_vectors(dimension: int) -> Iterator[IntVec]:
    for k in range(dimension):
        yield tuple(1 if i == k else 0 for i in range(dimension))
