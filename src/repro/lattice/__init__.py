"""Euclidean lattice substrate: lattices, sublattices, Voronoi geometry."""

from repro.lattice.lattice import Lattice
from repro.lattice.region import (
    Region,
    box_region,
    chebyshev_ball_region,
    euclidean_ball_region,
)
from repro.lattice.standard import (
    cubic_lattice,
    hexagonal_lattice,
    rectangular_lattice,
    scaled_lattice,
    square_lattice,
)
from repro.lattice.sublattice import (
    Sublattice,
    all_sublattices_of_index,
    diagonal_sublattice,
)
from repro.lattice.voronoi import (
    VoronoiCell,
    polygon_area,
    quasi_polyform_region,
    voronoi_cell_2d,
)

__all__ = [
    "Lattice",
    "Region",
    "Sublattice",
    "VoronoiCell",
    "all_sublattices_of_index",
    "box_region",
    "chebyshev_ball_region",
    "cubic_lattice",
    "diagonal_sublattice",
    "euclidean_ball_region",
    "hexagonal_lattice",
    "polygon_area",
    "quasi_polyform_region",
    "rectangular_lattice",
    "scaled_lattice",
    "square_lattice",
    "voronoi_cell_2d",
]
