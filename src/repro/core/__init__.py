"""The paper's contribution: tiling schedules, optimality, extensions."""

from repro.core.analysis import (
    ScheduleAnalysis,
    analyze_schedule,
    tiling_vs_tdma,
)
from repro.core.mobile import MobileDecision, MobileScheduler
from repro.core.optimality import (
    AssignmentSchedule,
    as_multi_tiling,
    clique_lower_bound,
    minimum_slots,
    minimum_slots_region,
    optimal_schedule,
    schedule_variable_conflicts,
)
from repro.core.restriction import (
    restrict_schedule,
    restricted_optimum,
    restriction_criterion_holds,
    restriction_report,
)
from repro.core.serialize import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from repro.core.schedule import (
    MappingSchedule,
    MultiTilingSchedule,
    Schedule,
    ScheduleDelta,
    TilingSchedule,
    VerificationCache,
    conflict_offsets,
    find_collisions,
    verify_collision_free,
)
from repro.core.theorem1 import (
    optimal_slot_count,
    pairwise_conflicting_cells,
    schedule_from_prototile,
    schedule_from_tiling,
)
from repro.core.theorem2 import (
    respectable_optimal_slots,
    schedule_from_multi_tiling,
    theorem2_slot_count,
)

__all__ = [
    "AssignmentSchedule",
    "MappingSchedule",
    "MobileDecision",
    "MobileScheduler",
    "MultiTilingSchedule",
    "Schedule",
    "ScheduleAnalysis",
    "ScheduleDelta",
    "TilingSchedule",
    "VerificationCache",
    "analyze_schedule",
    "as_multi_tiling",
    "clique_lower_bound",
    "conflict_offsets",
    "find_collisions",
    "minimum_slots",
    "minimum_slots_region",
    "optimal_schedule",
    "optimal_slot_count",
    "pairwise_conflicting_cells",
    "respectable_optimal_slots",
    "restrict_schedule",
    "restricted_optimum",
    "restriction_criterion_holds",
    "restriction_report",
    "schedule_from_dict",
    "schedule_from_json",
    "schedule_from_multi_tiling",
    "schedule_from_prototile",
    "schedule_from_tiling",
    "schedule_to_dict",
    "schedule_to_json",
    "schedule_variable_conflicts",
    "theorem2_slot_count",
    "tiling_vs_tdma",
    "verify_collision_free",
]
