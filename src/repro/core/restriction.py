"""Restriction to finite deployments (the paper's Conclusions).

    *A natural question is whether the schedule remains optimal if one
    restricts the schedule from the lattice L to a finite subset D of L.
    This question has an affirmative answer if D contains a translate of
    the set N1 + N1, as the latter set consists of the respectable
    prototile N1 and its neighbors, in which case our optimality proof
    carries over without change.*

:func:`restrict_schedule` produces the finite schedule;
:func:`restriction_criterion_holds` checks the sufficient condition; and
:func:`restricted_optimum` computes the true optimum of the finite
instance by exact coloring, letting experiments show both directions:
optimality persists when ``D`` contains a translate of ``N + N``, and
small windows genuinely need fewer slots.
"""

from __future__ import annotations

from repro.core.optimality import minimum_slots_region
from repro.core.schedule import MappingSchedule, Schedule
from repro.lattice.region import Region
from repro.tiles.prototile import Prototile

__all__ = [
    "restrict_schedule",
    "restriction_criterion_holds",
    "restricted_optimum",
    "restriction_report",
]


def restrict_schedule(schedule: Schedule, region: Region) -> MappingSchedule:
    """The schedule restricted to the points of a finite region.

    The restriction inherits collision-freeness trivially (fewer sensors,
    same slots); whether it stays *optimal* is the conclusions' question.
    """
    return MappingSchedule({point: schedule.slot_of(point)
                            for point in region})


def restriction_criterion_holds(prototile: Prototile,
                                region: Region) -> bool:
    """Does ``D`` contain a translate of ``N + N``?

    When true, the paper's optimality proof carries over: the region
    contains a full copy of the respectable prototile together with all
    its neighbors, so the ``|N|``-clique of pairwise-conflicting sensors
    survives the restriction.
    """
    return region.contains_translate_of(sorted(prototile.self_sum()))


def restricted_optimum(prototile: Prototile, region: Region) -> int:
    """Exact minimum slot count for the finite deployment ``D``."""
    count, _ = minimum_slots_region(prototile, region)
    return count


def restriction_report(prototile: Prototile, region: Region,
                       schedule: Schedule) -> dict:
    """One row of the finite-restriction experiment.

    Returns a dict with the region size, whether the ``N + N`` criterion
    holds, the slot count of the restricted tiling schedule, and the true
    finite optimum — the experiment asserts ``optimal == |N|`` whenever
    the criterion holds.
    """
    criterion = restriction_criterion_holds(prototile, region)
    restricted = restrict_schedule(schedule, region)
    optimum = restricted_optimum(prototile, region)
    return {
        "region_points": len(region),
        "criterion_n_plus_n": criterion,
        "tiling_slots": schedule.num_slots,
        "restricted_used_slots": restricted.used_slots(),
        "finite_optimum": optimum,
    }
