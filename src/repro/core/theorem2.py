"""Theorem 2: optimal schedules for tilings with several prototiles.

    *Let T_1, ..., T_n be a respectable tiling of a Euclidean lattice L
    with neighborhoods of the type N_1, ..., N_n.  Suppose that the
    sensors are deployed according to the scheme D1.  Then there exists a
    deterministic periodic schedule that avoids collision problems using
    m = |N_1| time slots.  The schedule is optimal in the sense that one
    cannot achieve this property with fewer than m time slots.*

The constructive schedule (from the proof) works for *any* multi-prototile
tiling, respectable or not, and uses ``m = |N_1 | ... | N_n|`` slots; the
respectability hypothesis (``N_1`` contains every ``N_k``) makes that
union equal ``N_1`` and yields the optimality.  Section 4 shows optimality
genuinely fails without it: see :mod:`repro.core.optimality` and the
Figure 5 experiment.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.schedule import MultiTilingSchedule
from repro.tiling.multi import MultiTiling
from repro.utils.vectors import IntVec

__all__ = [
    "schedule_from_multi_tiling",
    "theorem2_slot_count",
    "respectable_optimal_slots",
]


def schedule_from_multi_tiling(multi: MultiTiling,
                               cells: Sequence[IntVec] | None = None
                               ) -> MultiTilingSchedule:
    """The Theorem 2 schedule: slot = index of a sensor's cell in ``|_| N_k``.

    With ``N = N_1 | ... | N_n = {n_1, ..., n_m}``, the sensors at
    ``n_k + T_l`` broadcast at slot ``k`` iff ``n_k`` is in ``N_l`` —
    exactly the proof's assignment.  GT1 guarantees every sensor gets a
    slot; GT2 guarantees no collision (verified in the test suite).

    Works for non-respectable tilings as well, where the slot count
    ``m = |N|`` may exceed the (tiling-dependent) optimum.
    """
    return MultiTilingSchedule(multi, cells)


def theorem2_slot_count(multi: MultiTiling) -> int:
    """Slot count of the constructive schedule: ``|N_1 | ... | N_n|``."""
    return multi.union_prototile().size


def respectable_optimal_slots(multi: MultiTiling) -> int:
    """Optimal slot count ``|N_1|`` for a respectable tiling.

    Raises:
        ValueError: if the tiling is not respectable — then no tiling-
            independent optimum exists (Section 4), and
            :func:`repro.core.optimality.minimum_slots` must be used.
    """
    index = multi.respectable_index()
    if index is None:
        raise ValueError(
            "tiling is not respectable; the optimal slot count depends on "
            "the tiling (paper, Section 4) — use "
            "repro.core.optimality.minimum_slots")
    return multi.prototiles[index].size
