"""Certificate verification: O(fundamental domain) instead of O(window).

The paper's Theorem 1/2 schedules are lattice-periodic: the slot (and
the interference shape) of a sensor repeats under the tiling's period
sublattice ``P``, so for any pair ``(x, x + delta)`` and the canonical
representative ``r`` of ``x + P``,

    ``(x, x + delta)`` collides  iff  ``(r, r + delta)`` collides.

Scanning the ``[Z^d : P]`` coset representatives against the
conflict-radius boundary therefore decides collision-freeness of the
*infinite* schedule — every window of every size — in one pass over the
fundamental domain.  :func:`certify_schedule` runs that scan and emits a
:class:`PeriodicCertificate`:

* **collision-free** certificates answer any congruent window in O(1)
  (``verify_points`` / ``verify_box`` return ``[]`` without touching the
  window);
* a **colliding** certificate stores the colliding ``(representative,
  offset)`` classes, from which the concrete colliding pairs of any
  window are enumerated — still without rescanning slots;
* certificates serialize (:meth:`PeriodicCertificate.to_json`) and
  re-attach to a reloaded schedule by content digest
  (:meth:`PeriodicCertificate.covers`).

Aperiodic :class:`~repro.core.schedule.MappingSchedule` regions have no
period to exploit; :func:`certify_schedule` returns ``None`` and callers
fall back to the full scan.

For windows too large to materialize (10^8+ points),
:func:`stream_box_collisions` scans a box window in bounded memory:
axis-0 slabs plus a conflict-radius halo, each chunk verified by the
ordinary bulk engine, results concatenated in canonical order — bit
identical to a one-shot :func:`~repro.core.schedule.find_collisions`
over the whole box, on both backends.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence

from repro.core.schedule import (
    Collision,
    MultiTilingSchedule,
    NeighborhoodFn,
    Schedule,
    TilingSchedule,
    _bulk_slots,
    _default_offsets,
    _origin_shapes,
    conflict_offsets,
    find_collisions,
)
from repro.core.serialize import CorruptSessionError, schedule_digest
from repro.lattice.sublattice import Sublattice
from repro.utils.vectors import IntVec, as_intvec, box_points, vadd, vsub

__all__ = [
    "PeriodicCertificate",
    "certify_periodic",
    "certify_schedule",
    "certificate_from_dict",
    "certificate_from_json",
    "stream_box_collisions",
]

#: Default chunk size (points per axis-0 slab) for streamed box scans.
DEFAULT_CHUNK_POINTS = 200_000


def _validated_box(lo: Sequence[int],
                   hi: Sequence[int]) -> tuple[IntVec, IntVec]:
    lo_vec, hi_vec = as_intvec(lo), as_intvec(hi)
    if len(lo_vec) != len(hi_vec) \
            or any(l > h for l, h in zip(lo_vec, hi_vec)):
        raise ValueError(
            f"box corners must satisfy lo <= hi per dimension; got "
            f"lo={lo_vec}, hi={hi_vec}")
    return lo_vec, hi_vec


def _coset_points_in_box(period: Sublattice, representative: IntVec,
                         lo: IntVec, hi: IntVec) -> list[IntVec]:
    """All points of ``representative + period`` inside ``[lo, hi]``.

    The HNF basis is lower triangular (coefficient of basis vector
    ``j`` only affects coordinates ``>= j``), so coefficients are
    enumerated one axis at a time against the remaining coordinate
    slack — O(d) per emitted point, no scan over the box.
    """
    basis = period.basis
    dimension = period.dimension
    points: list[IntVec] = []

    def descend(axis: int, partial: list[int]) -> None:
        if axis == dimension:
            points.append(tuple(partial))
            return
        diagonal = basis[axis][axis]
        low = lo[axis] - partial[axis]
        high = hi[axis] - partial[axis]
        first = -((-low) // diagonal)    # ceil(low / diagonal)
        last = high // diagonal          # floor(high / diagonal)
        column = basis[axis]
        for coefficient in range(first, last + 1):
            extended = list(partial)
            for i in range(axis, dimension):
                extended[i] += coefficient * column[i]
            descend(axis + 1, extended)

    descend(0, list(representative))
    return points


class PeriodicCertificate:
    """Proof object for a lattice-periodic schedule's collision status.

    Produced by :func:`certify_schedule` / :func:`certify_periodic`;
    records the verdict of one fundamental-domain scan.  A certificate
    with no ``colliding_classes`` proves the schedule collision-free
    over *every* window; otherwise ``colliding_classes`` holds the
    ``(representative, offset)`` pairs from which the colliding pairs
    of any concrete window are enumerated.

    Attributes:
        period: the period sublattice the scan quotiented by.
        num_slots: slot count of the certified schedule.
        offsets: the lexicographically positive conflict offsets probed
            from each representative (the certificate's geometry; fixed
            at certification).
        colliding_classes: sorted ``(representative, offset)`` pairs
            whose whole coset collides; empty means collision-free.
        checked_points: lattice points the certifying scan actually
            looked at — the representatives plus one boundary probe per
            (representative, offset).
        schedule_digest: content digest of the certified schedule's
            serial form (``None`` when the schedule has none); lets a
            deserialized certificate re-attach via :meth:`covers`.
    """

    def __init__(self, *, period: Sublattice, num_slots: int,
                 offsets: tuple[IntVec, ...],
                 colliding_classes: tuple[tuple[IntVec, IntVec], ...],
                 checked_points: int,
                 schedule_digest: str | None = None,
                 schedule: Schedule | None = None) -> None:
        self.period = period
        self.num_slots = num_slots
        self.offsets = offsets
        self.colliding_classes = colliding_classes
        self.checked_points = checked_points
        self.schedule_digest = schedule_digest
        self._schedule = schedule
        self._deltas_cache: dict[IntVec, tuple[IntVec, ...]] | None = None

    # -- verdicts ------------------------------------------------------
    @property
    def collision_free(self) -> bool:
        """True when the certified schedule never collides, anywhere."""
        return not self.colliding_classes

    def covers(self, schedule: Schedule) -> bool:
        """True when this certificate speaks for ``schedule``.

        The schedule it was built from is covered by identity; any
        other schedule must match by serialized content digest (so a
        save/load round-trip keeps its certificate).  Schedules without
        a serial form only ever match by identity.
        """
        if self._schedule is not None and schedule is self._schedule:
            return True
        if self.schedule_digest is None:
            return False
        try:
            return schedule_digest(schedule) == self.schedule_digest
        except TypeError:
            return False

    def _deltas_by_representative(self) -> dict[IntVec, tuple[IntVec, ...]]:
        if self._deltas_cache is None:
            grouped: dict[IntVec, list[IntVec]] = {}
            for representative, delta in self.colliding_classes:
                grouped.setdefault(representative, []).append(delta)
            self._deltas_cache = {r: tuple(ds) for r, ds in grouped.items()}
        return self._deltas_cache

    def verify_points(self,
                      points: Iterable[Sequence[int]]) -> list[Collision]:
        """The certified schedule's colliding pairs among ``points``.

        Bit-identical to :func:`~repro.core.schedule.find_collisions`
        over the same window (same pair order, same duplicate-window
        semantics) — O(1) when the certificate is collision-free,
        O(|window|) class enumeration otherwise, never a slot rescan.
        """
        if self.collision_free:
            return []
        point_list = [as_intvec(p) for p in points]
        if not point_list:
            return []
        window = set(point_list)
        canonical = self.period.canonical_representative
        deltas = self._deltas_by_representative()
        collisions: list[Collision] = []
        for x in point_list:
            for delta in deltas.get(canonical(x), ()):
                y = vadd(x, delta)
                if y in window:
                    collisions.append((x, y))
        collisions.sort()
        return collisions

    def verify_box(self, lo: Sequence[int],
                   hi: Sequence[int]) -> list[Collision]:
        """Colliding pairs inside the closed box ``[lo, hi]``.

        Never materializes the box: the colliding cosets are enumerated
        directly from the period basis, so a clean certificate answers
        a 10^8-point box in O(1) and a colliding one in O(|output|).
        """
        lo_vec, hi_vec = _validated_box(lo, hi)
        if self.collision_free:
            return []
        collisions: list[Collision] = []
        for representative, delta in self.colliding_classes:
            for x in _coset_points_in_box(self.period, representative,
                                          lo_vec, hi_vec):
                y = vadd(x, delta)
                if all(l <= c <= h for c, l, h in zip(y, lo_vec, hi_vec)):
                    collisions.append((x, y))
        collisions.sort()
        return collisions

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-able description (round-trips via
        :func:`certificate_from_dict`)."""
        return {
            "kind": "periodic-certificate",
            "period_basis": [list(v) for v in self.period.basis],
            "num_slots": self.num_slots,
            "offsets": [list(d) for d in self.offsets],
            "colliding_classes": [[list(r), list(d)]
                                  for r, d in self.colliding_classes],
            "checked_points": self.checked_points,
            "schedule_digest": self.schedule_digest,
        }

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def __repr__(self) -> str:
        verdict = ("collision-free" if self.collision_free
                   else f"{len(self.colliding_classes)} colliding classes")
        return (f"PeriodicCertificate({verdict}, "
                f"period_index={self.period.index}, "
                f"checked_points={self.checked_points})")


def certificate_from_dict(data: dict, *,
                          path: str | None = None) -> PeriodicCertificate:
    """Rebuild a certificate from :meth:`PeriodicCertificate.to_dict`.

    Raises:
        CorruptSessionError: when the payload is not a well-formed
            certificate description (missing fields, wrong types, wrong
            kind), carrying ``path`` when given.
    """
    try:
        return _certificate_from_dict(data)
    except CorruptSessionError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        reason = (f"missing required field {error.args[0]!r}"
                  if isinstance(error, KeyError)
                  else str(error) or type(error).__name__)
        raise CorruptSessionError(reason, path=path) from error


def _certificate_from_dict(data: dict) -> PeriodicCertificate:
    if not isinstance(data, dict):
        raise TypeError(
            f"expected a JSON object, got {type(data).__name__}")
    if data.get("kind") != "periodic-certificate":
        raise ValueError(f"unknown certificate kind: {data.get('kind')!r}")
    period = Sublattice([tuple(v) for v in data["period_basis"]])
    return PeriodicCertificate(
        period=period,
        num_slots=int(data["num_slots"]),
        offsets=tuple(tuple(d) for d in data["offsets"]),
        colliding_classes=tuple(
            (tuple(r), tuple(d)) for r, d in data["colliding_classes"]),
        checked_points=int(data["checked_points"]),
        schedule_digest=data.get("schedule_digest"),
    )


def certificate_from_json(text: str, *,
                          path: str | None = None) -> PeriodicCertificate:
    """Rebuild a certificate from :meth:`PeriodicCertificate.to_json`.

    Raises:
        CorruptSessionError: on truncated/garbage JSON or a payload
            missing required fields, carrying ``path`` when given.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise CorruptSessionError(
            f"invalid JSON: {error}", path=path) from error
    return certificate_from_dict(data, path=path)


def certify_periodic(schedule: Schedule, period: Sublattice,
                     neighborhood_of: NeighborhoodFn,
                     offsets: Iterable[IntVec] | None = None,
                     ) -> PeriodicCertificate:
    """Certify any schedule that is periodic under ``period``.

    The caller asserts the periodicity contract: for every ``p`` in the
    period, ``slot(x + p) == slot(x)`` *and* the interference shape of
    ``x + p`` equals that of ``x``.  (Theorem 1/2 schedules satisfy it
    by construction; :func:`certify_schedule` is the safe front door
    that checks the structure itself.)  Under that contract a pair
    collides iff its representative class does, so the scan covers one
    canonical representative per coset plus the conflict-radius
    boundary around each.

    Args:
        schedule: the slot assignment (duck-typed; ``slots_of`` /
            ``slot_of`` is all that is required).
        period: the period sublattice.
        neighborhood_of: interference map (pass the schedule's own
            ``neighborhood_of`` for Theorem 1/2 schedules).
        offsets: candidate conflict offsets; derived from the domain's
            interference shapes when omitted.  As with
            :func:`~repro.core.schedule.find_collisions`, an explicit
            narrower set narrows the verdict's scope.
    """
    representatives = sorted(period.coset_representatives())
    dimension = period.dimension
    zero = (0,) * dimension
    if offsets is None:
        shapes, _ = _origin_shapes(representatives, neighborhood_of)
        offset_list = _default_offsets(representatives, shapes)
    else:
        offset_list = [as_intvec(d) for d in offsets]
    positive = sorted(d for d in set(offset_list) if d > zero)
    probes = [vadd(r, d) for r in representatives for d in positive]
    domain = representatives + probes
    shapes, shape_ids = _origin_shapes(domain, neighborhood_of)
    slots = _bulk_slots(schedule, domain)
    differences: dict[tuple[int, int], frozenset[IntVec]] = {}
    colliding: list[tuple[IntVec, IntVec]] = []
    probe_index = len(representatives)
    for i, representative in enumerate(representatives):
        slot = slots[i]
        a = shape_ids[i]
        for delta in positive:
            if slots[probe_index] == slot:
                b = shape_ids[probe_index]
                row = differences.get((a, b))
                if row is None:
                    row = frozenset(vsub(p, q)
                                    for p in shapes[a] for q in shapes[b])
                    differences[(a, b)] = row
                if delta in row:
                    colliding.append((representative, delta))
            probe_index += 1
    try:
        digest = schedule_digest(schedule)
    except TypeError:
        digest = None
    return PeriodicCertificate(
        period=period, num_slots=schedule.num_slots,
        offsets=tuple(positive), colliding_classes=tuple(sorted(colliding)),
        checked_points=len(domain), schedule_digest=digest,
        schedule=schedule)


def _uses_own_neighborhood(schedule: Schedule) -> bool:
    """True when the schedule's interference map is the stock one.

    A subclass overriding ``neighborhood_of`` voids the periodicity
    guarantee the certificate rests on, so such schedules are not
    auto-certified.
    """
    if isinstance(schedule, TilingSchedule):
        return type(schedule).neighborhood_of \
            is TilingSchedule.neighborhood_of
    if isinstance(schedule, MultiTilingSchedule):
        return type(schedule).neighborhood_of \
            is MultiTilingSchedule.neighborhood_of
    return False


def certify_schedule(schedule: Schedule,
                     offsets: Iterable[IntVec] | None = None,
                     ) -> PeriodicCertificate | None:
    """Certificate for a schedule with known periodic structure.

    Returns ``None`` for schedules the certificate layer cannot prove
    periodic — aperiodic :class:`~repro.core.schedule.MappingSchedule`
    regions, tilings without ``coset_structure()``, and subclasses that
    override ``neighborhood_of`` — callers then fall back to the full
    window scan.
    """
    if not _uses_own_neighborhood(schedule):
        return None
    if isinstance(schedule, TilingSchedule):
        structure = schedule.tiling.coset_structure()
        if structure is None:
            return None
        period = structure[0]
    elif isinstance(schedule, MultiTilingSchedule):
        period = schedule.multi.coset_structure()[0]
    else:
        return None
    return certify_periodic(schedule, period, schedule.neighborhood_of,
                            offsets=offsets)


def _schedule_offsets(schedule: Schedule) -> list[IntVec]:
    """Global conflict offsets derivable from a schedule's structure."""
    if isinstance(schedule, TilingSchedule):
        return sorted(conflict_offsets([schedule.prototile]))
    if isinstance(schedule, MultiTilingSchedule):
        return sorted(conflict_offsets(schedule.multi.prototiles))
    raise ValueError(
        f"cannot derive conflict offsets for "
        f"{type(schedule).__name__}; pass offsets= explicitly to stream "
        f"a box window")


def stream_box_collisions(schedule: Schedule,
                          lo: Sequence[int], hi: Sequence[int],
                          neighborhood_of: NeighborhoodFn,
                          offsets: Iterable[IntVec] | None = None,
                          chunk_points: int = DEFAULT_CHUNK_POINTS,
                          ) -> list[Collision]:
    """Out-of-core scan of the box window ``[lo, hi]``, chunk by chunk.

    Equivalent — bit for bit, on both backends — to
    ``find_collisions(schedule, box_points(lo, hi), neighborhood_of)``,
    but only ever materializes one axis-0 slab of about
    ``chunk_points`` points (plus a conflict-radius halo), so 10^8+
    point windows verify in bounded memory.

    Chunking is sound because a lexicographically positive conflict
    offset never decreases coordinate 0: every pair's left endpoint
    falls in exactly one slab and its right endpoint within ``halo``
    rows above it, so scanning each slab extended by the halo and
    keeping pairs whose left endpoint lies in the slab partitions the
    full result; slabs ascend along axis 0, so plain concatenation is
    already the canonical sorted order.

    Args:
        schedule: slot assignment to check.
        lo, hi: closed box corners (``lo <= hi`` per dimension).
        neighborhood_of: interference map (the schedule's own for
            Theorem 1/2 schedules).
        offsets: conflict offsets valid over the whole box; derived
            from the schedule's prototile structure when omitted
            (schedules without one need them passed explicitly —
            per-chunk shape derivation could miss cross-chunk offsets).
        chunk_points: target points per slab (>= 1); the actual bound
            is one slab of rows plus the halo.
    """
    lo_vec, hi_vec = _validated_box(lo, hi)
    if chunk_points < 1:
        raise ValueError("chunk_points must be >= 1")
    offset_list = (_schedule_offsets(schedule) if offsets is None
                   else [as_intvec(d) for d in offsets])
    zero = (0,) * len(lo_vec)
    positive = [d for d in offset_list if d > zero]
    if not positive:
        return []
    halo = max(d[0] for d in positive)
    slab = 1
    for low, high in zip(lo_vec[1:], hi_vec[1:]):
        slab *= high - low + 1
    rows_per_chunk = max(1, chunk_points // slab)
    collisions: list[Collision] = []
    for first_row in range(lo_vec[0], hi_vec[0] + 1, rows_per_chunk):
        last_row = min(first_row + rows_per_chunk - 1, hi_vec[0])
        top_row = min(last_row + halo, hi_vec[0])
        chunk = list(box_points((first_row,) + lo_vec[1:],
                                (top_row,) + hi_vec[1:]))
        found = find_collisions(schedule, chunk, neighborhood_of,
                                offsets=offset_list)
        collisions.extend(pair for pair in found
                          if pair[0][0] <= last_row)
    return collisions
