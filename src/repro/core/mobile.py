"""Mobile sensors (the paper's Conclusions / Section 5 construction).

    *One straightforward way is to use our schedule to assign time slots
    to the locations rather than to the sensors.  Let us assume that the
    lattice points are spaced fine enough to ensure that only one sensor
    is within a Voronoi region of a lattice point.  If the time slot k is
    assigned to a lattice point p, then a sensor s within the open Voronoi
    region about p can send at time t if and only if t = k (mod m) and the
    interference range of s fits within the tile of p.*

:class:`MobileScheduler` implements this literally on a 2-D lattice:

* slots belong to lattice points via a Theorem 1 schedule;
* a moving sensor is owned by the lattice point whose (open) Voronoi cell
  contains it;
* the "interference range fits within the tile" test is made discrete and
  exact: the sensor's interference disk touches a finite set of Voronoi
  cells, and the fit holds iff every touched cell belongs to the tile
  (the translate ``t + N`` that covers the owner).

Collision-freeness then follows the paper's argument: same-slot owners lie
in *distinct* tiles, distinct tiles are disjoint, and each sender's
interference stays inside its own tile.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.core.schedule import TilingSchedule
from repro.lattice.lattice import Lattice
from repro.lattice.voronoi import VoronoiCell, voronoi_cell_2d
from repro.utils.vectors import IntVec, vadd
from repro.utils.validation import require

__all__ = ["MobileScheduler", "MobileDecision"]


class MobileDecision:
    """Outcome of a mobile send query.

    Attributes:
        owner: lattice point whose Voronoi cell contains the sensor.
        slot: the slot owned by that lattice point.
        fits: whether the sensor's interference disk fits in the tile.
        touched_points: lattice points whose cells the disk touches.
    """

    def __init__(self, owner: IntVec, slot: int, fits: bool,
                 touched_points: frozenset[IntVec]):
        self.owner = owner
        self.slot = slot
        self.fits = fits
        self.touched_points = touched_points

    def may_send(self, time: int, num_slots: int) -> bool:
        """The paper's rule: correct slot *and* range fits in the tile."""
        return self.fits and time % num_slots == self.slot

    def __repr__(self) -> str:
        return (f"MobileDecision(owner={self.owner}, slot={self.slot}, "
                f"fits={self.fits})")


class MobileScheduler:
    """Location-based slots for mobile sensors on a 2-D lattice.

    Args:
        lattice: the (2-D) lattice whose points own the slots.
        schedule: a Theorem 1 tiling schedule on that lattice's
            coordinates.
    """

    def __init__(self, lattice: Lattice, schedule: TilingSchedule):
        require(lattice.dimension == 2,
                "the mobile construction is implemented for 2-D lattices")
        self.lattice = lattice
        self.schedule = schedule
        self._base_cell: VoronoiCell = voronoi_cell_2d(lattice)
        # Circumradius of the Voronoi cell bounds which cells a disk of
        # radius r can touch: centers within r + circumradius.
        self._circumradius = max(
            math.hypot(vx - self._base_cell.center[0],
                       vy - self._base_cell.center[1])
            for vx, vy in self._base_cell.vertices)

    @property
    def num_slots(self) -> int:
        return self.schedule.num_slots

    # ------------------------------------------------------------------
    def owner_of(self, position: Sequence[float]) -> IntVec:
        """The lattice point whose Voronoi cell contains the position.

        Positions on cell boundaries are resolved to the nearest point
        with deterministic tie-breaking; the paper's "one sensor per open
        Voronoi region" assumption makes ties measure-zero events.
        """
        return self.lattice.nearest_point(position)

    def cell_of(self, point: Sequence[int]) -> VoronoiCell:
        """The Voronoi cell of a lattice point."""
        center = self.lattice.to_real(point)
        offset = (center[0] - self._base_cell.center[0],
                  center[1] - self._base_cell.center[1])
        return self._base_cell.translated(offset)

    def touched_lattice_points(self, position: Sequence[float],
                               radius: float) -> frozenset[IntVec]:
        """Lattice points whose closed Voronoi cell meets the closed disk.

        These are exactly the locations whose (potential) occupants could
        be interfered with by a transmission of range ``radius`` from
        ``position``.
        """
        require(radius >= 0, "radius must be nonnegative")
        center = np.asarray(position, dtype=float)
        # A touched cell's lattice point lies within radius + circumradius
        # of the position, and the position is within circumradius of its
        # owner, so searching around the owner needs radius + 2R.
        search = radius + 2.0 * self._circumradius + 1e-9
        candidates = self.lattice.points_within_distance(
            search, self.owner_of(position))
        touched = set()
        for point in candidates:
            cell = self.cell_of(point)
            if _distance_to_cell(center, cell) <= radius + 1e-9:
                touched.add(point)
        return frozenset(touched)

    def tile_points_of(self, owner: Sequence[int]) -> frozenset[IntVec]:
        """The lattice points of the tile ``t + N`` covering ``owner``."""
        translation, _ = self.schedule.tiling.decompose(owner)
        return frozenset(vadd(translation, cell)
                         for cell in self.schedule.prototile.cells)

    def decide(self, position: Sequence[float],
               radius: float) -> MobileDecision:
        """Evaluate the paper's send rule for a sensor at ``position``.

        The interference disk "fits within the tile" iff every Voronoi
        cell it touches belongs to the tile of the owner.
        """
        owner = self.owner_of(position)
        slot = self.schedule.slot_of(owner)
        touched = self.touched_lattice_points(position, radius)
        fits = touched <= self.tile_points_of(owner)
        return MobileDecision(owner, slot, fits, touched)

    def may_send(self, position: Sequence[float], radius: float,
                 time: int) -> bool:
        """Convenience wrapper: may the sensor send at this time step?"""
        return self.decide(position, radius).may_send(time, self.num_slots)


def _distance_to_cell(point: np.ndarray, cell: VoronoiCell) -> float:
    """Euclidean distance from a point to a convex polygon (0 if inside)."""
    if cell.contains_point(point):
        return 0.0
    best = math.inf
    count = len(cell.vertices)
    for i in range(count):
        ax, ay = cell.vertices[i]
        bx, by = cell.vertices[(i + 1) % count]
        best = min(best, _distance_to_segment(point, (ax, ay), (bx, by)))
    return best


def _distance_to_segment(point: np.ndarray, a: tuple[float, float],
                         b: tuple[float, float]) -> float:
    ax, ay = a
    bx, by = b
    px, py = float(point[0]), float(point[1])
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / length_sq))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(px - cx, py - cy)
