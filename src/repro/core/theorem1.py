"""Theorem 1: optimal collision-free schedules from lattice tilings.

    *Let T be a tiling of a Euclidean lattice L in R^d with neighborhoods
    of the form N.  Then there exists a deterministic periodic schedule
    that avoids collision problems using m = |N| time slots.  The schedule
    is optimal in the sense that one cannot achieve this property with
    fewer than m time slots.*

The construction (:func:`schedule_from_tiling`) is the proof's: enumerate
``N = {n_1, ..., n_m}`` and give slot ``k`` to the sensors at ``n_k + T``.
The lower bound (:func:`pairwise_conflicting_cells`) is the proof's clique
argument: any two ``n', n''`` in ``N`` conflict because ``n' + n''`` lies
in both ``n' + N`` and ``n'' + N``, so all ``|N|`` cells need distinct
slots in *any* collision-free periodic schedule.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.schedule import TilingSchedule
from repro.tiles.exactness import find_sublattice_tiling
from repro.tiles.prototile import Prototile
from repro.tiling.base import Tiling
from repro.tiling.construct import find_tiling
from repro.tiling.lattice_tiling import LatticeTiling
from repro.utils.vectors import IntVec, vadd

__all__ = [
    "schedule_from_tiling",
    "schedule_from_prototile",
    "optimal_slot_count",
    "pairwise_conflicting_cells",
]


def schedule_from_tiling(tiling: Tiling,
                         cells: Sequence[IntVec] | None = None
                         ) -> TilingSchedule:
    """The Theorem 1 schedule for a tiling (slots = ``|N|``).

    Args:
        tiling: a validated tiling of ``Z^d`` by the neighborhood ``N``.
        cells: optional enumeration ``n_1, ..., n_m`` of ``N``; defaults
            to lexicographic order.  Any enumeration yields a collision-
            free optimal schedule — the theorem does not depend on it.
    """
    return TilingSchedule(tiling, cells)


def schedule_from_prototile(prototile: Prototile,
                            max_period_side: int = 6) -> TilingSchedule:
    """Find a tiling for the neighborhood and return its schedule.

    Raises:
        ValueError: if the prototile is not exact (no tiling found), in
            which case Theorem 1 does not apply; fall back to the
            graph-coloring baselines of :mod:`repro.graphs`.
    """
    tiling = find_tiling(prototile, max_period_side=max_period_side)
    if tiling is None:
        raise ValueError(
            f"prototile {prototile.name!r} admits no tiling (not exact); "
            f"Theorem 1 does not apply")
    return schedule_from_tiling(tiling)


def optimal_slot_count(prototile: Prototile) -> int:
    """The optimal number of slots, ``m = |N|``.

    By Theorem 1 this is achievable whenever the prototile is exact, and
    by the clique argument no collision-free periodic schedule for the
    full lattice can use fewer.
    """
    return prototile.size


def pairwise_conflicting_cells(prototile: Prototile) -> list[tuple[IntVec, IntVec, IntVec]]:
    """Witnesses for the lower-bound clique argument.

    For every pair ``n' != n''`` of cells, returns ``(n', n'', w)`` where
    ``w = n' + n''`` lies in both ``n' + N`` and ``n'' + N`` — proving the
    two sensors' ranges intersect, hence all ``|N|`` cells must occupy
    pairwise distinct slots.
    """
    witnesses = []
    cells = prototile.sorted_cells()
    for i, first in enumerate(cells):
        for second in cells[i + 1:]:
            witness = vadd(first, second)
            assert witness in prototile.translate(first)
            assert witness in prototile.translate(second)
            witnesses.append((first, second, witness))
    return witnesses


def lattice_schedule_or_none(prototile: Prototile) -> TilingSchedule | None:
    """Schedule via a sublattice tiling only (O(d^2) slot lookups)."""
    sublattice = find_sublattice_tiling(prototile)
    if sublattice is None:
        return None
    return schedule_from_tiling(LatticeTiling(prototile, sublattice))
