"""Exact optimal slot counts: the Section 4 ground rules, mechanized.

For non-respectable tilings the paper fixes ground rules: every translated
copy of a prototile uses the same slot assignment, while different
prototiles' assignments may be chosen independently, subject to global
collision-freeness.  Under these rules the optimum is the chromatic number
of a finite *conflict graph over (prototile, cell) variables*:

* variable ``(k, n_i)`` = the slot given to cell ``n_i`` inside every
  translate of prototile ``N_k``;
* edge between ``(k, n_i)`` and ``(l, m_j)`` iff *some* pair of distinct
  tile instances makes those two sensors' interference ranges intersect:
  there is an anchor difference ``delta = t_l - t_k`` with
  ``delta + m_j - n_i`` in the difference set ``N_k - N_l``.

Anchor differences only matter within a Chebyshev bound derived from the
prototile geometry, so the graph is finite and exact.  Its chromatic
number (via :mod:`repro.graphs.coloring`) is the tiling's optimal slot
count; Figure 5's 6-versus-4 gap falls out of exactly this computation.
"""

from __future__ import annotations

from repro.graphs.coloring import exact_chromatic_number, greedy_clique
from repro.lattice.region import Region
from repro.graphs.interference import conflict_graph_homogeneous
from repro.tiles.prototile import Prototile
from repro.tiling.base import Tiling
from repro.tiling.lattice_tiling import LatticeTiling
from repro.tiling.multi import MultiTiling
from repro.tiling.periodic import PeriodicTiling
from repro.utils.vectors import IntVec, linf_norm, vadd, vsub

__all__ = [
    "AssignmentSchedule",
    "as_multi_tiling",
    "schedule_variable_conflicts",
    "minimum_slots",
    "minimum_slots_region",
    "optimal_schedule",
    "clique_lower_bound",
]

Variable = tuple[int, IntVec]


def as_multi_tiling(tiling: Tiling | MultiTiling) -> MultiTiling:
    """View any single-prototile tiling as a one-prototile MultiTiling."""
    if isinstance(tiling, MultiTiling):
        return tiling
    if isinstance(tiling, LatticeTiling):
        origin = (0,) * tiling.dimension
        period = tiling.sublattice
        return MultiTiling([tiling.prototile], [[origin]], period)
    if isinstance(tiling, PeriodicTiling):
        return MultiTiling([tiling.prototile], [sorted(tiling.anchors)],
                           tiling.period)
    raise TypeError(f"unsupported tiling type: {type(tiling).__name__}")


def _difference_cells(a: Prototile, b: Prototile) -> frozenset[IntVec]:
    return frozenset(vsub(p, q) for p in a.cells for q in b.cells)


def schedule_variable_conflicts(tiling: Tiling | MultiTiling,
                                ) -> dict[Variable, set[Variable]]:
    """The conflict graph over (prototile, cell) slot variables.

    Raises:
        AssertionError: if a variable conflicts with itself, which would
            contradict GT2 — the constructor of the tiling should have
            rejected such data.
    """
    multi = as_multi_tiling(tiling)
    prototiles = multi.prototiles
    variables: list[Variable] = [
        (k, cell) for k, tile in enumerate(prototiles)
        for cell in tile.sorted_cells()
    ]
    graph: dict[Variable, set[Variable]] = {v: set() for v in variables}

    for k, tile_k in enumerate(prototiles):
        cells_k = tile_k.sorted_cells()
        for l in range(k, len(prototiles)):
            tile_l = prototiles[l]
            cells_l = tile_l.sorted_cells()
            differences = _difference_cells(tile_k, tile_l)
            bound = (max(linf_norm(d) for d in differences)
                     + max(linf_norm(c) for c in cells_k)
                     + max(linf_norm(c) for c in cells_l))
            deltas = multi.anchor_differences(k, l, bound)
            for n_i in cells_k:
                for m_j in cells_l:
                    if _variables_conflict(k, l, n_i, m_j, deltas,
                                           differences):
                        a, b = (k, n_i), (l, m_j)
                        if a == b:
                            raise AssertionError(
                                "slot variable conflicts with itself; the "
                                "tiling violates GT2")
                        graph[a].add(b)
                        graph[b].add(a)
    return graph


def _variables_conflict(k: int, l: int, n_i: IntVec, m_j: IntVec,
                        deltas: set[IntVec],
                        differences: frozenset[IntVec]) -> bool:
    """Does some instance pair make cells (k, n_i) and (l, m_j) collide?

    The sensors are ``x = t + n_i`` and ``y = u + m_j`` with anchors
    ``t in T_k``, ``u in T_l``; they must be distinct sensors.  Their
    ranges intersect iff ``(u - t) + m_j - n_i in N_k - N_l``.
    """
    origin = (0,) * len(n_i)
    for delta in deltas:
        if k == l and delta == origin and n_i == m_j:
            continue  # same sensor, not a pair
        if vadd(delta, vsub(m_j, n_i)) in differences:
            # Distinct sensors? x == y would need delta == n_i - m_j.
            if delta == vsub(n_i, m_j):
                continue
            return True
    return False


def minimum_slots(tiling: Tiling | MultiTiling) -> tuple[int, dict[Variable, int]]:
    """Exact optimal slot count for a tiling under the Section 4 rules.

    Returns ``(m, assignment)`` where ``assignment`` maps each
    (prototile, cell) variable to a slot in ``0..m-1``.  For a tiling of a
    single exact prototile this returns ``|N|`` (Theorem 1); for
    Figure 5's mixed S/Z tiling it returns 6 and for the symmetric all-S
    tiling 4.
    """
    graph = schedule_variable_conflicts(tiling)
    return exact_chromatic_number(graph)


def clique_lower_bound(tiling: Tiling | MultiTiling) -> int:
    """Size of a greedy clique in the variable conflict graph."""
    return len(greedy_clique(schedule_variable_conflicts(tiling)))


class AssignmentSchedule:
    """A runnable schedule built from a (prototile, cell) -> slot map.

    Turns the *witness* of :func:`minimum_slots` into an actual schedule:
    the sensor at ``x`` covered by prototile ``k``'s tile at cell ``n``
    broadcasts in slot ``assignment[(k, n)]``.  This satisfies the
    Section 4 ground rules by construction (every translate of a
    prototile uses the same slots), and the conflict-graph construction
    guarantees collision-freeness — verified independently in tests.
    """

    def __init__(self, multi: MultiTiling, assignment: dict[Variable, int]):
        expected = {(k, cell) for k, tile in enumerate(multi.prototiles)
                    for cell in tile.cells}
        if set(assignment) != expected:
            raise ValueError(
                "assignment must cover every (prototile, cell) variable")
        self.multi = multi
        self.assignment = dict(assignment)
        self.num_slots = max(assignment.values()) + 1

    def slot_of(self, point) -> int:
        k, _, cell = self.multi.decompose(point)
        return self.assignment[(k, cell)]

    def slots_of(self, points) -> list[int]:
        """Bulk :meth:`slot_of` via the tiling's vectorized decomposition."""
        return [self.assignment[(k, cell)]
                for k, _, cell in self.multi.decompose_batch(points)]

    def may_send(self, point, time: int) -> bool:
        return time % self.num_slots == self.slot_of(point)

    def neighborhood_of(self, point):
        """Deployment-D1 interference set (for verification)."""
        return self.multi.neighborhood_of(point)


def optimal_schedule(tiling: Tiling | MultiTiling) -> AssignmentSchedule:
    """The exact-optimal runnable schedule for a tiling (Section 4 rules).

    For Figure 5's mixed tiling this is a genuine 6-slot schedule; for
    any Theorem 1 tiling it coincides (up to slot relabeling) with the
    constructive schedule.
    """
    multi = as_multi_tiling(tiling)
    _, assignment = minimum_slots(multi)
    return AssignmentSchedule(multi, assignment)


def minimum_slots_region(prototile: Prototile,
                         region: Region) -> tuple[int, dict[IntVec, int]]:
    """Exact optimal slot count for a *finite* homogeneous deployment.

    The chromatic number of the conflict graph on the region's points
    (``x ~ y`` iff ``y - x in (N - N) \\ {0}``).  The conclusions show
    this equals ``|N|`` whenever the region contains a translate of
    ``N + N``; smaller regions may do with fewer slots.
    """
    graph = conflict_graph_homogeneous(region.points, prototile)
    return exact_chromatic_number(graph)
