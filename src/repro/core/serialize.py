"""Serialization of schedules for sensor configuration.

The paper notes that keeping the schedule identical across translated
tiles "simplifies configuring the sensor network"; in practice a deployed
network needs the schedule shipped to the sensors.  This module round-
trips the library's schedules through plain JSON-able dictionaries:

* a :class:`~repro.core.schedule.TilingSchedule` over a lattice tiling is
  fully described by the prototile cells, the sublattice basis and the
  cell (slot) enumeration;
* a :class:`~repro.core.schedule.MultiTilingSchedule` additionally
  carries the per-prototile anchors and the period basis;
* a :class:`~repro.core.schedule.MappingSchedule` is an explicit table.

Each sensor can then answer "may I send at time t?" from a few integers —
no global state, matching the paper's distributed setting.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.schedule import (
    MappingSchedule,
    MultiTilingSchedule,
    Schedule,
    TilingSchedule,
)
from repro.lattice.sublattice import Sublattice
from repro.tiles.prototile import Prototile
from repro.tiling.lattice_tiling import LatticeTiling
from repro.tiling.multi import MultiTiling

__all__ = ["CorruptSessionError",
           "schedule_to_dict", "schedule_from_dict",
           "schedule_to_json", "schedule_from_json", "schedule_digest",
           "snapshot_to_json", "snapshot_from_json",
           "session_wire_to_json", "session_wire_from_json"]


class CorruptSessionError(ValueError):
    """A session/schedule/certificate file failed to deserialize.

    Raised instead of the raw :class:`json.JSONDecodeError` /
    :class:`KeyError` / :class:`TypeError` soup when loading truncated
    or garbage input, so callers can catch one typed error and report
    *which* file broke and *why*:

    Attributes:
        path: the file the payload came from (``None`` for in-memory
            strings/dicts).
        reason: one human-readable line on what was wrong.
    """

    def __init__(self, reason: str, *, path: str | None = None) -> None:
        prefix = f"{path}: " if path is not None else ""
        super().__init__(f"{prefix}corrupt session data: {reason}")
        self.path = path
        self.reason = reason


def schedule_to_dict(schedule: Schedule) -> dict:
    """A JSON-able description of a schedule.

    Raises:
        TypeError: for schedule types without a serial form (e.g. a
            ``TilingSchedule`` over a non-lattice periodic tiling; ship
            the anchors via a ``MultiTilingSchedule`` instead).
    """
    if isinstance(schedule, TilingSchedule):
        tiling = schedule.tiling
        if not isinstance(tiling, LatticeTiling):
            raise TypeError(
                "only lattice-tiling schedules serialize via this form; "
                "wrap periodic tilings as MultiTilingSchedule")
        return {
            "kind": "tiling",
            "cells": [list(c) for c in schedule.cells],
            "prototile": sorted(list(c) for c in tiling.prototile.cells),
            "sublattice_basis": [list(v) for v in
                                 tiling.sublattice.basis],
        }
    if isinstance(schedule, MultiTilingSchedule):
        multi = schedule.multi
        return {
            "kind": "multi",
            "cells": [list(c) for c in schedule.cells],
            "prototiles": [sorted(list(c) for c in tile.cells)
                           for tile in multi.prototiles],
            "anchor_sets": [sorted(list(a) for a in multi.anchor_set(k))
                            for k in range(multi.num_prototiles)],
            "period_basis": [list(v) for v in multi.period.basis],
        }
    if isinstance(schedule, MappingSchedule):
        return {
            "kind": "mapping",
            "assignment": [[list(point), slot]
                           for point, slot in sorted(
                               (p, schedule.slot_of(p))
                               for p in schedule.points)],
        }
    raise TypeError(f"cannot serialize {type(schedule).__name__}")


def schedule_from_dict(data: dict, *, path: str | None = None) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output.

    All tiling invariants are re-validated during reconstruction, so a
    corrupted description is rejected rather than silently
    mis-scheduling — as a typed :class:`CorruptSessionError` naming the
    source ``path`` (when given) and the failing field.
    """
    try:
        return _schedule_from_dict(data)
    except CorruptSessionError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise CorruptSessionError(
            _describe_corruption(error), path=path) from error


def _describe_corruption(error: BaseException) -> str:
    if isinstance(error, KeyError):
        return f"missing required field {error.args[0]!r}"
    return str(error) or type(error).__name__


def _schedule_from_dict(data: dict) -> Schedule:
    if not isinstance(data, dict):
        raise TypeError(
            f"expected a JSON object, got {type(data).__name__}")
    kind = data.get("kind")
    if kind == "tiling":
        prototile = Prototile(tuple(c) for c in data["prototile"])
        sublattice = Sublattice([tuple(v) for v in
                                 data["sublattice_basis"]])
        tiling = LatticeTiling(prototile, sublattice)
        cells = [tuple(c) for c in data["cells"]]
        return TilingSchedule(tiling, cells)
    if kind == "multi":
        prototiles = [Prototile(tuple(c) for c in cells)
                      for cells in data["prototiles"]]
        period = Sublattice([tuple(v) for v in data["period_basis"]])
        anchor_sets = [[tuple(a) for a in anchors]
                       for anchors in data["anchor_sets"]]
        multi = MultiTiling(prototiles, anchor_sets, period)
        cells = [tuple(c) for c in data["cells"]]
        return MultiTilingSchedule(multi, cells)
    if kind == "mapping":
        return MappingSchedule({tuple(point): slot
                                for point, slot in data["assignment"]})
    raise ValueError(f"unknown schedule kind: {kind!r}")


def schedule_to_json(schedule: Schedule) -> str:
    """Serialize a schedule to a JSON string."""
    return json.dumps(schedule_to_dict(schedule), sort_keys=True)


def schedule_from_json(text: str, *, path: str | None = None) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_json` output.

    Raises:
        CorruptSessionError: on truncated/garbage JSON or a payload
            missing required fields, carrying ``path`` when given.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise CorruptSessionError(
            f"invalid JSON: {error}", path=path) from error
    return schedule_from_dict(data, path=path)


#: Envelope format version for :func:`snapshot_to_json`.
_SNAPSHOT_VERSION = 1


def snapshot_to_json(schedule: Schedule, *, session_id: str) -> str:
    """Serialize one service-session snapshot as a self-checking envelope.

    The :class:`repro.service.store.SessionStore` spills evicted
    sessions through this form: the schedule's canonical description
    plus its content digest, so a snapshot that was truncated or edited
    on disk is rejected at restore time instead of silently
    mis-scheduling a fleet.  Warm verification caches are *not* part of
    the envelope — they are session state the store keeps in memory
    across the evict/restore cycle (the same handoff semantics
    :meth:`repro.api.Session.edit` uses).
    """
    return json.dumps({
        "kind": "session-snapshot",
        "version": _SNAPSHOT_VERSION,
        "session_id": session_id,
        "schedule": schedule_to_dict(schedule),
        "digest": schedule_digest(schedule),
    }, sort_keys=True)


def snapshot_from_json(text: str, *,
                       path: str | None = None) -> tuple[str, Schedule]:
    """Rebuild ``(session_id, schedule)`` from :func:`snapshot_to_json`.

    Raises:
        CorruptSessionError: on garbage JSON, a wrong envelope kind or
            version, or a digest mismatch (the schedule payload does not
            hash to the digest recorded at snapshot time).
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise CorruptSessionError(
            f"invalid JSON: {error}", path=path) from error
    if not isinstance(data, dict) or data.get("kind") != "session-snapshot":
        raise CorruptSessionError(
            f"not a session snapshot (kind={data.get('kind')!r} "
            f"if it is an object at all)" if isinstance(data, dict)
            else f"expected a JSON object, got {type(data).__name__}",
            path=path)
    if data.get("version") != _SNAPSHOT_VERSION:
        raise CorruptSessionError(
            f"unsupported snapshot version {data.get('version')!r} "
            f"(this build reads version {_SNAPSHOT_VERSION})", path=path)
    try:
        session_id = data["session_id"]
        schedule = schedule_from_dict(data["schedule"], path=path)
        recorded = data["digest"]
    except KeyError as error:
        raise CorruptSessionError(
            f"missing required field {error.args[0]!r}", path=path) from error
    actual = schedule_digest(schedule)
    if recorded != actual:
        raise CorruptSessionError(
            f"schedule digest mismatch: envelope records {recorded!r} but "
            f"the payload hashes to {actual!r}", path=path)
    if not isinstance(session_id, str):
        raise CorruptSessionError(
            f"session_id must be a string, got {type(session_id).__name__}",
            path=path)
    return session_id, schedule


#: Envelope format version for :func:`session_wire_to_json`.
_WIRE_VERSION = 1


def session_wire_to_json(schedule: Schedule, *, session_id: str,
                         window: list | None = None,
                         config: dict | None = None,
                         offsets: list | None = None,
                         neighborhood: Schedule | None = None) -> str:
    """Serialize a session for the wire: schedule + session state.

    The transport layer (:mod:`repro.service.transport`) ships whole
    sessions between processes through this envelope — opening a
    session on a remote worker, and moving sessions between workers
    when the pool rebalances.  It extends the store's snapshot form
    with the *session* state a remote process cannot reconstruct from
    the schedule alone:

    * the default verification window (a list of points, or ``None``);
    * the engine config (an opaque JSON object produced by
      :meth:`repro.engine.config.EngineConfig.to_dict`, or ``None`` —
      opaque here so the core stays independent of the engine layer);
    * explicit interference ``offsets``, if the session carries them;
    * the ``neighborhood`` owner schedule, when the session's
      interference model is another schedule's bound method — the
      restrict path: a mapping-backed session whose model still comes
      from the tiling it was cut from.  Functions cannot cross the
      wire; a schedule's canonical description can, and rebinding
      ``neighborhood_of`` on the content-identical reconstruction
      yields the same model.

    Same self-checking digest as :func:`snapshot_to_json`: a truncated
    or edited envelope is rejected at decode time, never silently
    mis-scheduled.
    """
    if window is not None:
        window = [[int(coord) for coord in point] for point in window]
    if offsets is not None:
        offsets = [[int(coord) for coord in point] for point in offsets]
    if config is not None and not isinstance(config, dict):
        raise TypeError(
            f"config must be a JSON-able dict or None, "
            f"got {type(config).__name__}")
    return json.dumps({
        "kind": "session-wire",
        "version": _WIRE_VERSION,
        "session_id": session_id,
        "schedule": schedule_to_dict(schedule),
        "digest": schedule_digest(schedule),
        "window": window,
        "config": config,
        "offsets": offsets,
        "neighborhood": (None if neighborhood is None
                         else schedule_to_dict(neighborhood)),
    }, sort_keys=True)


def session_wire_from_json(
        text: str, *, path: str | None = None,
) -> tuple[str, Schedule, list[tuple[int, ...]] | None, dict | None,
           list[tuple[int, ...]] | None, Schedule | None]:
    """Rebuild ``(session_id, schedule, window, config, offsets,
    neighborhood)`` from :func:`session_wire_to_json`.

    ``neighborhood`` comes back as a reconstructed :class:`Schedule`
    (bind its ``neighborhood_of`` method), or ``None``.

    Raises:
        CorruptSessionError: on garbage JSON, a wrong envelope kind or
            version, a digest mismatch, or a malformed window/config/
            offsets/neighborhood field.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise CorruptSessionError(
            f"invalid JSON: {error}", path=path) from error
    if not isinstance(data, dict) or data.get("kind") != "session-wire":
        raise CorruptSessionError(
            f"not a session wire envelope (kind={data.get('kind')!r} "
            f"if it is an object at all)" if isinstance(data, dict)
            else f"expected a JSON object, got {type(data).__name__}",
            path=path)
    if data.get("version") != _WIRE_VERSION:
        raise CorruptSessionError(
            f"unsupported wire envelope version {data.get('version')!r} "
            f"(this build reads version {_WIRE_VERSION})", path=path)
    try:
        session_id = data["session_id"]
        schedule = schedule_from_dict(data["schedule"], path=path)
        recorded = data["digest"]
        window = data["window"]
        config = data["config"]
    except KeyError as error:
        raise CorruptSessionError(
            f"missing required field {error.args[0]!r}", path=path) from error
    offsets = data.get("offsets")
    neighborhood_data = data.get("neighborhood")
    actual = schedule_digest(schedule)
    if recorded != actual:
        raise CorruptSessionError(
            f"schedule digest mismatch: envelope records {recorded!r} but "
            f"the payload hashes to {actual!r}", path=path)
    if not isinstance(session_id, str):
        raise CorruptSessionError(
            f"session_id must be a string, got {type(session_id).__name__}",
            path=path)
    if config is not None and not isinstance(config, dict):
        raise CorruptSessionError(
            f"config must be an object or null, "
            f"got {type(config).__name__}", path=path)
    if window is not None:
        try:
            window = [tuple(int(coord) for coord in point)
                      for point in window]
        except (TypeError, ValueError) as error:
            raise CorruptSessionError(
                f"malformed window: {error}", path=path) from error
    if offsets is not None:
        try:
            offsets = [tuple(int(coord) for coord in point)
                       for point in offsets]
        except (TypeError, ValueError) as error:
            raise CorruptSessionError(
                f"malformed offsets: {error}", path=path) from error
    neighborhood = (None if neighborhood_data is None
                    else schedule_from_dict(neighborhood_data, path=path))
    return session_id, schedule, window, config, offsets, neighborhood


def schedule_digest(schedule: Schedule) -> str:
    """Content digest (hex) of a schedule's canonical serial form.

    Two schedules digest equal iff :func:`schedule_to_dict` describes
    them identically — the identity a
    :class:`~repro.core.certify.PeriodicCertificate` uses to re-attach
    to a save/load round-tripped schedule.

    Raises:
        TypeError: for schedule types without a serial form.
    """
    return hashlib.sha256(
        schedule_to_json(schedule).encode("ascii")).hexdigest()
