"""Closed-form schedule analysis: the paper's scalability argument.

"The obvious disadvantage of TDMA is that it does not scale: if the
number k of sensors is large, then the sensors cannot communicate
frequently enough."  For periodic slot schedules the relevant quantities
have closed forms; this module computes them so experiments and users can
compare disciplines without simulation:

* **round length** — slots until the schedule repeats;
* **channel share** — fraction of slots a given sensor may use
  (``1/m`` for every sensor under a tiling schedule);
* **maximum access delay** — worst-case wait until a sensor's next slot;
* **sustainable packet interval** — the smallest per-sensor traffic
  period the schedule can serve without queues growing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.tiles.prototile import Prototile
from repro.utils.validation import require_positive

__all__ = ["ScheduleAnalysis", "analyze_schedule", "tiling_vs_tdma"]


@dataclass(frozen=True)
class ScheduleAnalysis:
    """Closed-form per-sensor properties of a periodic schedule.

    Attributes:
        round_length: slots per period (``m``).
        channel_share: fraction of slots one sensor owns (``1/m``).
        max_access_delay: worst-case slots until the next owned slot.
        sustainable_interval: smallest packet interval (slots) a sensor
            can sustain indefinitely (equals the round length).
    """

    round_length: int
    channel_share: float
    max_access_delay: int
    sustainable_interval: int

    def as_row(self) -> dict:
        """Flat dict for report tables."""
        return {
            "round": self.round_length,
            "share": round(self.channel_share, 6),
            "max delay": self.max_access_delay,
            "min interval": self.sustainable_interval,
        }


def analyze_schedule(schedule: Schedule) -> ScheduleAnalysis:
    """Closed-form analysis of any periodic schedule.

    Each sensor owns exactly one slot per round in every schedule this
    library produces (tiling, Theorem 2, TDMA, coloring-based), so the
    quantities depend only on the round length.
    """
    m = schedule.num_slots
    return ScheduleAnalysis(
        round_length=m,
        channel_share=1.0 / m,
        max_access_delay=m,
        sustainable_interval=m,
    )


def tiling_vs_tdma(prototile: Prototile, num_sensors: int) -> dict:
    """The paper's scalability comparison as one table row.

    A tiling schedule serves *any* number of sensors with ``|N|`` slots;
    plain TDMA needs one slot per sensor.  The 'speedup' column is the
    factor by which the tiling schedule lets each sensor communicate more
    frequently — it grows linearly with the network.
    """
    require_positive(num_sensors, "num_sensors")
    m = prototile.size
    return {
        "sensors": num_sensors,
        "tiling round": m,
        "tdma round": num_sensors,
        "speedup": round(num_sensors / m, 2),
    }
