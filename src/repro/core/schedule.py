"""Deterministic periodic broadcast schedules and their verification.

A schedule assigns each sensor (lattice point) a slot ``k`` in
``{0, ..., m-1}``; the sensor may broadcast at time ``t`` iff
``t = k (mod m)``.  (The paper indexes slots ``1..m``; we use ``0..m-1``
throughout the library and ``1..m`` only when rendering figures.)

A schedule is *collision-free* when no two distinct sensors with
intersecting interference ranges share a slot.  For sensors at ``x`` and
``y`` with neighborhoods ``x + N_x`` and ``y + N_y`` the ranges intersect
iff ``y - x`` lies in the difference set ``N_x - N_y``, so verification
over a window costs ``O(|window| * |offsets|)`` instead of comparing all
pairs.

Verification comes in three speeds.  :func:`find_collisions` /
:func:`verify_collision_free` rescan a whole window (on the bulk
engine, sharded across worker processes when enabled).  Under *churn* —
repeated small edits to a schedule — a :class:`VerificationCache`
tracks one window and, given the :class:`ScheduleDelta` describing an
edit (:meth:`MappingSchedule.with_updates`), re-verifies only the dirty
region: the edited points dilated by the conflict-offset radius.  And
for lattice-periodic schedules, a
:class:`~repro.core.certify.PeriodicCertificate` (the ``certificate=``
hook) answers from one fundamental-domain scan — O(1) per window once
certified.  All speeds produce identical collision lists.
"""

from __future__ import annotations

import hashlib
from bisect import insort
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.certify import PeriodicCertificate

from repro.engine.collisions import scan_collisions, scan_collisions_touching
from repro.engine.encode import BoxEncoder
from repro.engine.slots import CosetTable, as_point_batch
from repro.tiles.prototile import Prototile
from repro.tiling.base import Tiling
from repro.tiling.multi import MultiTiling
from repro.utils.vectors import IntVec, as_intvec, vadd, vsub
from repro.utils.validation import require

__all__ = [
    "Schedule",
    "MappingSchedule",
    "TilingSchedule",
    "MultiTilingSchedule",
    "Collision",
    "ScheduleDelta",
    "VerificationCache",
    "conflict_offsets",
    "find_collisions",
    "verify_collision_free",
]

NeighborhoodFn = Callable[[IntVec], frozenset[IntVec]]


class Schedule:
    """Base class: a periodic slot assignment for lattice points."""

    def __init__(self, num_slots: int):
        require(num_slots >= 1, "a schedule needs at least one slot")
        self.num_slots = num_slots
        # Last-window slot buckets for senders_at; see slot_buckets.
        self._bucket_cache: tuple[tuple[IntVec, ...],
                                  dict[int, list[IntVec]]] | None = None

    def slot_of(self, point: Sequence[int]) -> int:
        """Slot of the sensor at ``point`` (in ``0..num_slots-1``)."""
        raise NotImplementedError

    def slots_of(self, points: Iterable[Sequence[int]]) -> list[int]:
        """Slots of many sensors at once.

        Semantically ``[self.slot_of(p) for p in points]``; subclasses
        with coset structure dispatch to the vectorized engine kernel.
        """
        return [self.slot_of(p) for p in points]

    def may_send(self, point: Sequence[int], time: int) -> bool:
        """True when the sensor at ``point`` owns time step ``time``."""
        return time % self.num_slots == self.slot_of(point)

    def slot_buckets(self,
                     points: Iterable[Sequence[int]],
                     ) -> dict[int, list[IntVec]]:
        """Window points grouped by slot, in window order.

        Computed with one bulk ``slots_of`` pass and cached for the most
        recent window, so a simulation querying :meth:`senders_at` slot
        after slot over the same window pays the assignment cost once
        instead of one ``O(|window|)`` scan per query.  Callers must not
        mutate the returned lists.
        """
        window = tuple(as_intvec(p) for p in points)
        cached = self._bucket_cache
        if cached is not None and cached[0] == window:
            return cached[1]
        buckets: dict[int, list[IntVec]] = {}
        for point, slot in zip(window, self.slots_of(window)):
            buckets.setdefault(slot, []).append(point)
        self._bucket_cache = (window, buckets)
        return buckets

    def senders_at(self, time: int,
                   points: Iterable[Sequence[int]]) -> list[IntVec]:
        """The subset of ``points`` scheduled at the given time step."""
        slot = time % self.num_slots
        return list(self.slot_buckets(points).get(slot, []))


class MappingSchedule(Schedule):
    """A finite schedule backed by an explicit point -> slot mapping.

    Produced by the graph-coloring baselines and by restriction of an
    infinite schedule to a finite region.
    """

    def __init__(self, assignment: Mapping[IntVec, int]):
        require(len(assignment) > 0, "assignment must not be empty")
        slots = set(assignment.values())
        require(all(s >= 0 for s in slots), "slots must be nonnegative")
        super().__init__(max(slots) + 1)
        self._assignment = dict(assignment)
        # Domain points bucketed by slot (sorted order), built lazily by
        # _domain_buckets and derived incrementally by with_updates.
        self._domain_bucket_cache: dict[int, list[IntVec]] | None = None

    def slot_of(self, point: Sequence[int]) -> int:
        key = as_intvec(point)
        try:
            return self._assignment[key]
        except KeyError:
            raise KeyError(f"point {key} is not covered by this schedule") \
                from None

    @property
    def points(self) -> list[IntVec]:
        """The finite domain of the schedule."""
        return sorted(self._assignment)

    def used_slots(self) -> int:
        """Number of distinct slots actually used."""
        return len(set(self._assignment.values()))

    def with_updates(self, updates: Mapping[Sequence[int], int],
                     ) -> ScheduleDelta:
        """A new schedule with some slots reassigned (or points added).

        The receiver is left untouched; the returned
        :class:`ScheduleDelta` carries the new schedule together with
        the set of points whose slot actually changed — the dirty set
        that :meth:`VerificationCache.apply` re-verifies incrementally.
        No-op entries (a point already on the requested slot) are
        excluded from the dirty set.
        """
        new_assignment = dict(self._assignment)
        changed: set[IntVec] = set()
        for point, slot in updates.items():
            key = as_intvec(point)
            require(slot >= 0, "slots must be nonnegative")
            if new_assignment.get(key) != slot:
                new_assignment[key] = slot
                changed.add(key)
        schedule = MappingSchedule(new_assignment)
        self._seed_domain_buckets(schedule, changed)
        return ScheduleDelta(base=self, schedule=schedule,
                             changed=frozenset(changed))

    def _domain_buckets(self) -> dict[int, list[IntVec]]:
        """Domain points grouped by slot (each bucket sorted), cached."""
        if self._domain_bucket_cache is None:
            buckets: dict[int, list[IntVec]] = {}
            for point in self.points:
                buckets.setdefault(self._assignment[point], []).append(point)
            self._domain_bucket_cache = buckets
        return self._domain_bucket_cache

    def _seed_domain_buckets(self, child: MappingSchedule,
                             changed: set[IntVec]) -> None:
        """Derive the child's domain buckets by moving the edited points.

        Only when this schedule's buckets are already built and the edit
        adds no new points (so both domains — and the sorted bucket
        order — coincide); otherwise the child rebuilds lazily.  This is
        the ScheduleDelta form of bucket invalidation: the stale buckets
        never migrate, only a corrected copy does.
        """
        source = self._domain_bucket_cache
        if source is None or any(p not in self._assignment for p in changed):
            return
        derived = {slot: list(members) for slot, members in source.items()}
        for point in changed:
            old_slot = self._assignment[point]
            derived[old_slot].remove(point)
            if not derived[old_slot]:
                del derived[old_slot]
            insort(derived.setdefault(child._assignment[point], []), point)
        child._domain_bucket_cache = derived

    def senders_at(self, time: int,
                   points: Iterable[Sequence[int]] | None = None,
                   ) -> list[IntVec]:
        """Senders at a time step; ``points=None`` means the whole domain.

        The domain query runs off the precomputed per-slot buckets —
        ``O(|answer|)`` instead of an ``O(|domain|)`` scan per slot.
        """
        if points is not None:
            return super().senders_at(time, points)
        slot = time % self.num_slots
        return list(self._domain_buckets().get(slot, []))


class TilingSchedule(Schedule):
    """The Theorem 1 schedule: slots from a tiling of the lattice.

    With ``N = {n_1, ..., n_m}`` (the ``cells`` order) and translate set
    ``T``, the sensor at ``n_k + t`` gets slot ``k``; equivalently
    ``slot_of(x) = index of the cell of x's unique tile decomposition``.
    """

    def __init__(self, tiling: Tiling, cells: Sequence[IntVec] | None = None):
        prototile = tiling.prototile
        if cells is None:
            cells = prototile.sorted_cells()
        else:
            cells = [as_intvec(c) for c in cells]
            require(set(cells) == set(prototile.cells),
                    "cells must enumerate the prototile exactly")
        super().__init__(len(cells))
        self.tiling = tiling
        self.cells = list(cells)
        self._slot_by_cell = {cell: k for k, cell in enumerate(cells)}
        self._slot_table: CosetTable | None = None
        self._slot_table_ready = False

    def slot_of(self, point: Sequence[int]) -> int:
        _, cell = self.tiling.decompose(point)
        return self._slot_by_cell[cell]

    def slots_of(self, points: Iterable[Sequence[int]]) -> list[int]:
        table = self._coset_table()
        if table is None:
            return [self.slot_of(p) for p in points]
        return table.lookup(as_point_batch(points))

    def _coset_table(self) -> CosetTable | None:
        if not self._slot_table_ready:
            structure = self.tiling.coset_structure()
            if structure is not None:
                period, cell_by_representative = structure
                self._slot_table = CosetTable(
                    period,
                    {representative: self._slot_by_cell[cell]
                     for representative, cell
                     in cell_by_representative.items()})
            self._slot_table_ready = True
        return self._slot_table

    @property
    def prototile(self) -> Prototile:
        return self.tiling.prototile

    def neighborhood_of(self, point: Sequence[int]) -> frozenset[IntVec]:
        """Homogeneous interference set ``point + N``."""
        return self.prototile.translate(as_intvec(point))

    def slot_class_translations(self, slot: int, lo: Sequence[int],
                                hi: Sequence[int]) -> list[IntVec]:
        """Senders of a slot inside a box: the set ``n_slot + T``.

        Figure 3 observes that the senders of any one slot, together with
        their neighborhoods, again form a tiling of the lattice — this
        accessor exposes the senders so tests can verify that claim.
        """
        cell = self.cells[slot]
        return [vadd(t, cell)
                for t in self.tiling.translations_in_box(lo, hi)]


class MultiTilingSchedule(Schedule):
    """The Theorem 2 schedule for multi-prototile tilings.

    Let ``N = N_1 | ... | N_n = {n_1, ..., n_m}``.  For each prototile
    ``N_l`` the sensors at ``n_k + T_l`` are scheduled at slot ``k``
    whenever ``n_k`` belongs to ``N_l``: i.e. a sensor's slot is the index
    of its cell (within its covering tile) in the union enumeration.
    """

    def __init__(self, multi: MultiTiling,
                 cells: Sequence[IntVec] | None = None):
        union = multi.union_prototile()
        if cells is None:
            cells = union.sorted_cells()
        else:
            cells = [as_intvec(c) for c in cells]
            require(set(cells) == set(union.cells),
                    "cells must enumerate the union of the prototiles")
        super().__init__(len(cells))
        self.multi = multi
        self.cells = list(cells)
        self._slot_by_cell = {cell: k for k, cell in enumerate(cells)}
        self._slot_table: CosetTable | None = None

    def slot_of(self, point: Sequence[int]) -> int:
        _, _, cell = self.multi.decompose(point)
        return self._slot_by_cell[cell]

    def slots_of(self, points: Iterable[Sequence[int]]) -> list[int]:
        if self._slot_table is None:
            period, cell_by_representative = self.multi.coset_structure()
            self._slot_table = CosetTable(
                period,
                {representative: self._slot_by_cell[cell]
                 for representative, cell in cell_by_representative.items()})
        return self._slot_table.lookup(as_point_batch(points))

    def neighborhood_of(self, point: Sequence[int]) -> frozenset[IntVec]:
        """Deployment-D1 interference set of the sensor at ``point``."""
        return self.multi.neighborhood_of(point)


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------
Collision = tuple[IntVec, IntVec]


@dataclass(frozen=True)
class ScheduleDelta:
    """One schedule edit: ``base`` became ``schedule``.

    ``changed`` holds exactly the points whose slot differs between the
    two — the dirty set incremental verification re-checks.  Produced by
    :meth:`MappingSchedule.with_updates`; any code constructing deltas
    by hand must uphold the same contract (``base`` and ``schedule``
    agree everywhere outside ``changed``), since
    :meth:`VerificationCache.apply` trusts it.
    """

    base: Schedule
    schedule: Schedule
    changed: frozenset[IntVec]


def conflict_offsets(prototiles: Iterable[Prototile]) -> frozenset[IntVec]:
    """All nonzero offsets ``y - x`` at which two sensors *could* conflict.

    Sensors at ``x`` (type ``N_k``) and ``y`` (type ``N_l``) have
    intersecting ranges iff ``y - x`` is in ``N_k - N_l``; the union over
    all type pairs bounds the search neighborhood for verification.

    ``prototiles`` may be any iterable (including a one-shot generator);
    it is materialized before the pairwise loop.

    Raises:
        ValueError: if ``prototiles`` is empty.
    """
    tiles = list(prototiles)
    if not tiles:
        raise ValueError("need at least one prototile")
    offsets: set[IntVec] = set()
    for a in tiles:
        for b in tiles:
            for p in a.cells:
                for q in b.cells:
                    offsets.add(vsub(p, q))
    offsets.discard((0,) * tiles[0].dimension)
    return frozenset(offsets)


# Beyond this many distinct neighborhood shapes the pairwise difference
# sets the bulk scan precomputes stop paying off; verification then keeps
# the direct per-pair range-intersection test.
_MAX_SHAPE_CLASSES = 32


def _origin_shapes(point_list: list[IntVec],
                   neighborhood_of: NeighborhoodFn,
                   ) -> tuple[list[frozenset[IntVec]], list[int]]:
    """Classify points by interference shape (neighborhood rebased to 0).

    Returns ``(shapes, shape_ids)``.  Known homogeneous / deployment-D1
    neighborhood functions are recognized so the classification itself is
    O(1) or vectorized; arbitrary callables fall back to rebasing each
    point's neighborhood.
    """
    owner = getattr(neighborhood_of, "__self__", None)
    func = getattr(neighborhood_of, "__func__", None)
    if (isinstance(owner, TilingSchedule)
            and func is TilingSchedule.neighborhood_of):
        return [frozenset(owner.prototile.cells)], [0] * len(point_list)
    multi = None
    if (isinstance(owner, MultiTilingSchedule)
            and func is MultiTilingSchedule.neighborhood_of):
        multi = owner.multi
    elif isinstance(owner, MultiTiling) and func is MultiTiling.neighborhood_of:
        multi = owner
    if multi is not None:
        shapes = [frozenset(tile.cells) for tile in multi.prototiles]
        return shapes, multi.prototile_indices(point_list)
    shapes = []
    shape_ids = []
    index: dict[frozenset[IntVec], int] = {}
    for point in point_list:
        shape = frozenset(vsub(cell, point)
                          for cell in neighborhood_of(point))
        shape_id = index.get(shape)
        if shape_id is None:
            shape_id = len(shapes)
            index[shape] = shape_id
            shapes.append(shape)
        shape_ids.append(shape_id)
    return shapes, shape_ids


def _default_offsets(point_list: list[IntVec],
                     shapes: Sequence[frozenset[IntVec]]) -> list[IntVec]:
    """Candidate offsets from the deduplicated window shapes.

    A homogeneous window has one shape, a D1 deployment a few.
    """
    origin = (0,) * len(point_list[0])
    unique = sorted({shape | {origin} for shape in shapes}, key=sorted)
    prototiles = [Prototile(cells, name=f"window-{index}")
                  for index, cells in enumerate(unique)]
    return sorted(conflict_offsets(prototiles))


def _bulk_slots(schedule: Schedule, point_list: list[IntVec]) -> list[int]:
    # ``schedule`` is duck-typed; only ``slot_of`` is required.
    bulk = getattr(schedule, "slots_of", None)
    if bulk is not None:
        return bulk(point_list)
    return [schedule.slot_of(p) for p in point_list]


def _scan_window(point_list: list[IntVec],
                 slots: list[int],
                 shapes: list[frozenset[IntVec]],
                 shape_ids: list[int],
                 offset_list: list[IntVec]) -> list[Collision]:
    """Full-window scan shared by find_collisions and the cache."""
    if len(shapes) <= _MAX_SHAPE_CLASSES:
        return scan_collisions(point_list, slots, shape_ids, shapes,
                               offset_list)
    # Degenerate windows with very many distinct shapes: same probing
    # structure as the bulk path — first-occurrence index, per-occurrence
    # slot/shape tables, emitted pairs ``(x, points[j])`` — but with
    # difference rows built lazily per touched shape pair instead of the
    # full |shapes|^2 table up front.  Keeping the two paths structurally
    # aligned (rather than re-deriving ranges through ``neighborhood_of``)
    # pins their duplicate-point and occurrence semantics together.
    zero = (0,) * len(point_list[0])
    positive = [delta for delta in offset_list if delta > zero]
    point_index: dict[IntVec, int] = {}
    for i, point in enumerate(point_list):
        point_index.setdefault(point, i)
    differences: dict[tuple[int, int], frozenset[IntVec]] = {}
    collisions: list[Collision] = []
    for i, x in enumerate(point_list):
        slot = slots[i]
        a = shape_ids[i]
        for delta in positive:
            j = point_index.get(vadd(x, delta))
            if j is None or slots[j] != slot:
                continue
            b = shape_ids[j]
            row = differences.get((a, b))
            if row is None:
                row = frozenset(vsub(p, q)
                                for p in shapes[a] for q in shapes[b])
                differences[(a, b)] = row
            if delta in row:
                collisions.append((x, point_list[j]))
    collisions.sort()
    return collisions


def find_collisions(schedule: Schedule,
                    points: Iterable[Sequence[int]],
                    neighborhood_of: NeighborhoodFn,
                    offsets: Iterable[IntVec] | None = None,
                    cache: VerificationCache | None = None,
                    certificate: PeriodicCertificate | None = None,
                    ) -> list[Collision]:
    """All colliding sensor pairs among ``points`` under the schedule.

    A pair ``(x, y)`` collides when the sensors share a slot and their
    interference ranges intersect — the exact condition the paper's
    schedules must avoid.  The scan runs on the bulk engine
    (:mod:`repro.engine.collisions`): vectorized with numpy when
    available, pure Python otherwise, sharded across worker processes
    when enabled, with identical results on every path.

    Args:
        schedule: slot assignment to check.
        points: the sensors (finite window of the lattice).
        neighborhood_of: maps a sensor to its interference set (pass the
            schedule's ``neighborhood_of`` for Theorem 1/2 schedules).
        offsets: optional candidate conflict offsets; computed from the
            neighborhoods of the points when omitted.  Any iterable is
            accepted — a one-shot generator is materialized up front, so
            it is scanned in full for every point.
        cache: optional :class:`VerificationCache` over the same window.
            When the schedule is the one the cache tracks (kept current
            via :meth:`VerificationCache.apply`) the cached collision
            list is returned without rescanning; an unknown schedule
            rescans in full and rebinds the cache to it.
        certificate: optional
            :class:`~repro.core.certify.PeriodicCertificate` covering
            the schedule; the window is then answered from the
            certificate's fundamental-domain verdict — O(1) when
            collision-free — instead of scanning.  ``neighborhood_of``
            and ``offsets`` are not consulted on this path (the
            certificate's geometry was fixed at certification).
            Mutually exclusive with ``cache``.

    Returns:
        The colliding pairs, each ordered ``x < y`` and the list sorted —
        a canonical order independent of backend and input ordering.

    Raises:
        ValueError: when both ``cache`` and ``certificate`` are given,
            or when ``certificate`` does not cover ``schedule``.
    """
    if certificate is not None:
        if cache is not None:
            raise ValueError(
                "pass either cache= or certificate=, not both")
        if not certificate.covers(schedule):
            raise ValueError(
                "certificate mismatch: this certificate was issued for a "
                "different schedule — re-certify with "
                "repro.core.certify.certify_schedule")
        return certificate.verify_points(points)
    if cache is not None:
        return cache.collisions_for(schedule, points, neighborhood_of,
                                    offsets)
    point_list = [as_intvec(p) for p in points]
    if not point_list:
        return []
    offset_list = None if offsets is None else list(offsets)
    shapes, shape_ids = _origin_shapes(point_list, neighborhood_of)
    if offset_list is None:
        offset_list = _default_offsets(point_list, shapes)
    slots = _bulk_slots(schedule, point_list)
    return _scan_window(point_list, slots, shapes, shape_ids, offset_list)


def verify_collision_free(schedule: Schedule,
                          points: Iterable[Sequence[int]],
                          neighborhood_of: NeighborhoodFn,
                          offsets: Iterable[IntVec] | None = None,
                          cache: VerificationCache | None = None,
                          certificate: PeriodicCertificate | None = None,
                          ) -> bool:
    """True when no pair of sensors in ``points`` collides."""
    return not find_collisions(schedule, points, neighborhood_of, offsets,
                               cache=cache, certificate=certificate)


def _window_digest(sorted_points: list[IntVec]) -> str:
    """Order-insensitive content digest of a window's point multiset.

    Fed the *sorted* point list, so any permutation of the same window
    digests identically while any substitution changes it.
    """
    digest = hashlib.blake2b(digest_size=8)
    for point in sorted_points:
        digest.update(repr(point).encode("ascii"))
    return digest.hexdigest()


class VerificationCache:
    """Incremental collision verification for one sensor window.

    The cache normalizes the window once — points, first-occurrence
    index, per-point occurrence lists, interference shape classes,
    conflict offsets, and the box-encoded window key — and remembers the
    full collision list of the schedule it tracks.  After an edit,
    :meth:`apply` takes the :class:`ScheduleDelta` and re-verifies only
    the *dirty region* (the edited points dilated by the conflict-offset
    radius) in ``O(|edit| * |offsets|^2 + |collisions|)`` time, instead
    of the ``O(|window| * |offsets|)`` full rescan — while producing a
    collision list identical to :func:`find_collisions` on the edited
    schedule.

    The window geometry (``neighborhood_of`` and the offsets) is fixed
    at construction: deltas reassign slots, never interference ranges.
    """

    def __init__(self, schedule: Schedule,
                 points: Iterable[Sequence[int]],
                 neighborhood_of: NeighborhoodFn,
                 offsets: Iterable[IntVec] | None = None):
        point_list = [as_intvec(p) for p in points]
        require(len(point_list) > 0,
                "a verification cache needs a nonempty window")
        self._points = point_list
        self._neighborhood_of = neighborhood_of
        self._shapes, self._shape_ids = _origin_shapes(point_list,
                                                       neighborhood_of)
        if offsets is None:
            self._offsets = _default_offsets(point_list, self._shapes)
        else:
            self._offsets = list(offsets)
        self._index_of: dict[IntVec, int] = {}
        self._occurrences: dict[IntVec, list[int]] = {}
        for i, point in enumerate(point_list):
            self._index_of.setdefault(point, i)
            self._occurrences.setdefault(point, []).append(i)
        self._sorted_points = sorted(point_list)
        encoder = BoxEncoder(point_list)
        #: Identity of the verified window: bounding box, size, and a
        #: content digest of the point multiset.  Two caches with equal
        #: keys verify the same sensors (up to ordering) — the digest
        #: keeps different point sets sharing a bounding box and count
        #: from aliasing in a cache-per-window registry.
        self.window_key = (encoder.lo, encoder.hi, len(point_list),
                           _window_digest(self._sorted_points))
        self._schedule = schedule
        self._slots: list[int] | None = None
        self._collisions: list[Collision] | None = None

    @property
    def schedule(self) -> Schedule:
        """The schedule whose collisions the cache currently holds."""
        return self._schedule

    def __contains__(self, point: object) -> bool:
        """True when ``point`` is part of the verified window."""
        return point in self._index_of

    def touched_in_window(self, changed: Iterable[IntVec]) -> list[IntVec]:
        """The subset of ``changed`` that :meth:`apply` would rescan.

        The single definition of the rescan criterion: callers
        accounting for incremental re-verification cost (how many
        points a delta actually touched in this window) share it with
        :meth:`apply` instead of re-deriving membership.
        """
        return [p for p in changed if p in self._index_of]

    def collisions(self) -> list[Collision]:
        """Colliding pairs of the tracked schedule over the window.

        The first call runs the full bulk scan; later calls return the
        cached list (updated incrementally by :meth:`apply`).
        """
        if self._collisions is None:
            self._slots = _bulk_slots(self._schedule, self._points)
            self._collisions = _scan_window(
                self._points, self._slots, self._shapes, self._shape_ids,
                self._offsets)
        return list(self._collisions)

    def is_collision_free(self) -> bool:
        """True when the tracked schedule has no colliding pair."""
        return not self.collisions()

    def rebase(self, schedule: Schedule) -> None:
        """Swap the tracked schedule for a content-identical copy.

        The delta chain in :meth:`apply` checks schedule *identity*, so
        a cache handed across a serialize/deserialize boundary (session
        snapshot restore) must be re-pointed at the deserialized object
        before the next edit.  The caller guarantees the replacement
        assigns the same slots — the cached collision state is kept.
        """
        self._schedule = schedule

    def apply(self, delta: ScheduleDelta) -> list[Collision]:
        """Track the delta's schedule, re-verifying only the dirty region.

        Raises:
            ValueError: when ``delta.base`` is not the schedule this
                cache tracks — deltas must be applied in order (or the
                cache rebuilt via :meth:`collisions_for`).
        """
        if delta.base is not self._schedule:
            raise ValueError(
                "delta.base is not the schedule this cache tracks; "
                "apply deltas in edit order or rescan with collisions_for")
        self._schedule = delta.schedule
        if self._collisions is None:
            return self.collisions()
        touched = self.touched_in_window(delta.changed)
        if touched:
            assert self._slots is not None
            for point, slot in zip(touched,
                                   _bulk_slots(delta.schedule, touched)):
                for i in self._occurrences[point]:
                    self._slots[i] = slot
            touched_set = frozenset(touched)
            kept = [pair for pair in self._collisions
                    if pair[0] not in touched_set
                    and pair[1] not in touched_set]
            kept.extend(scan_collisions_touching(
                self._points, self._slots, self._shape_ids, self._shapes,
                self._offsets, touched_set, self._index_of,
                self._occurrences))
            kept.sort()
            self._collisions = kept
        return list(self._collisions)

    def collisions_for(self, schedule: Schedule,
                       points: Iterable[Sequence[int]] | None = None,
                       neighborhood_of: NeighborhoodFn | None = None,
                       offsets: Iterable[IntVec] | None = None,
                       ) -> list[Collision]:
        """:func:`find_collisions` through the cache (the ``cache=`` hook).

        The tracked schedule answers from the cache; an unknown schedule
        triggers a full rescan and rebinds the cache to it (the
        :class:`ScheduleDelta` path via :meth:`apply` is the incremental
        lane).  A ``points``/``neighborhood_of``/``offsets`` argument
        that disagrees with the cached window is an error, not a silent
        rescan — every scan this cache answers uses the geometry fixed
        at construction.  (Bound methods compare by target, so passing
        ``schedule.neighborhood_of`` again is fine; a freshly created
        but equivalent lambda is rejected because equivalence of
        arbitrary callables is undecidable — reuse the original.)
        ``points`` is compared as a multiset: sharded or streamed
        callers may hand the window back in any order, since the
        collision list is canonically sorted and independent of window
        ordering anyway.
        """
        if points is not None and sorted(
                as_intvec(p) for p in points) != self._sorted_points:
            raise ValueError(
                "window mismatch: this cache verifies a different window "
                f"(key {self.window_key})")
        if neighborhood_of is not None \
                and neighborhood_of != self._neighborhood_of:
            raise ValueError(
                "neighborhood mismatch: this cache was built with a "
                "different neighborhood function (the window geometry is "
                "fixed at construction — build a new cache to change it)")
        if offsets is not None and set(offsets) != set(self._offsets):
            raise ValueError(
                "offsets mismatch: this cache was built with different "
                "conflict offsets")
        if schedule is not self._schedule:
            self._schedule = schedule
            self._slots = None
            self._collisions = None
        return self.collisions()
