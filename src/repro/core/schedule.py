"""Deterministic periodic broadcast schedules and their verification.

A schedule assigns each sensor (lattice point) a slot ``k`` in
``{0, ..., m-1}``; the sensor may broadcast at time ``t`` iff
``t = k (mod m)``.  (The paper indexes slots ``1..m``; we use ``0..m-1``
throughout the library and ``1..m`` only when rendering figures.)

A schedule is *collision-free* when no two distinct sensors with
intersecting interference ranges share a slot.  For sensors at ``x`` and
``y`` with neighborhoods ``x + N_x`` and ``y + N_y`` the ranges intersect
iff ``y - x`` lies in the difference set ``N_x - N_y``, so verification
over a window costs ``O(|window| * |offsets|)`` instead of comparing all
pairs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.tiles.prototile import Prototile
from repro.tiling.base import Tiling
from repro.tiling.multi import MultiTiling
from repro.utils.vectors import IntVec, as_intvec, vadd, vsub
from repro.utils.validation import require

__all__ = [
    "Schedule",
    "MappingSchedule",
    "TilingSchedule",
    "MultiTilingSchedule",
    "Collision",
    "conflict_offsets",
    "find_collisions",
    "verify_collision_free",
]

NeighborhoodFn = Callable[[IntVec], frozenset[IntVec]]


class Schedule:
    """Base class: a periodic slot assignment for lattice points."""

    def __init__(self, num_slots: int):
        require(num_slots >= 1, "a schedule needs at least one slot")
        self.num_slots = num_slots

    def slot_of(self, point: Sequence[int]) -> int:
        """Slot of the sensor at ``point`` (in ``0..num_slots-1``)."""
        raise NotImplementedError

    def may_send(self, point: Sequence[int], time: int) -> bool:
        """True when the sensor at ``point`` owns time step ``time``."""
        return time % self.num_slots == self.slot_of(point)

    def senders_at(self, time: int,
                   points: Iterable[Sequence[int]]) -> list[IntVec]:
        """The subset of ``points`` scheduled at the given time step."""
        slot = time % self.num_slots
        return [as_intvec(p) for p in points if self.slot_of(p) == slot]


class MappingSchedule(Schedule):
    """A finite schedule backed by an explicit point -> slot mapping.

    Produced by the graph-coloring baselines and by restriction of an
    infinite schedule to a finite region.
    """

    def __init__(self, assignment: Mapping[IntVec, int]):
        require(len(assignment) > 0, "assignment must not be empty")
        slots = set(assignment.values())
        require(all(s >= 0 for s in slots), "slots must be nonnegative")
        super().__init__(max(slots) + 1)
        self._assignment = dict(assignment)

    def slot_of(self, point: Sequence[int]) -> int:
        key = as_intvec(point)
        try:
            return self._assignment[key]
        except KeyError:
            raise KeyError(f"point {key} is not covered by this schedule") \
                from None

    @property
    def points(self) -> list[IntVec]:
        """The finite domain of the schedule."""
        return sorted(self._assignment)

    def used_slots(self) -> int:
        """Number of distinct slots actually used."""
        return len(set(self._assignment.values()))


class TilingSchedule(Schedule):
    """The Theorem 1 schedule: slots from a tiling of the lattice.

    With ``N = {n_1, ..., n_m}`` (the ``cells`` order) and translate set
    ``T``, the sensor at ``n_k + t`` gets slot ``k``; equivalently
    ``slot_of(x) = index of the cell of x's unique tile decomposition``.
    """

    def __init__(self, tiling: Tiling, cells: Sequence[IntVec] | None = None):
        prototile = tiling.prototile
        if cells is None:
            cells = prototile.sorted_cells()
        else:
            cells = [as_intvec(c) for c in cells]
            require(set(cells) == set(prototile.cells),
                    "cells must enumerate the prototile exactly")
        super().__init__(len(cells))
        self.tiling = tiling
        self.cells = list(cells)
        self._slot_by_cell = {cell: k for k, cell in enumerate(cells)}

    def slot_of(self, point: Sequence[int]) -> int:
        _, cell = self.tiling.decompose(point)
        return self._slot_by_cell[cell]

    @property
    def prototile(self) -> Prototile:
        return self.tiling.prototile

    def neighborhood_of(self, point: Sequence[int]) -> frozenset[IntVec]:
        """Homogeneous interference set ``point + N``."""
        return self.prototile.translate(as_intvec(point))

    def slot_class_translations(self, slot: int, lo: Sequence[int],
                                hi: Sequence[int]) -> list[IntVec]:
        """Senders of a slot inside a box: the set ``n_slot + T``.

        Figure 3 observes that the senders of any one slot, together with
        their neighborhoods, again form a tiling of the lattice — this
        accessor exposes the senders so tests can verify that claim.
        """
        cell = self.cells[slot]
        return [vadd(t, cell)
                for t in self.tiling.translations_in_box(lo, hi)]


class MultiTilingSchedule(Schedule):
    """The Theorem 2 schedule for multi-prototile tilings.

    Let ``N = N_1 | ... | N_n = {n_1, ..., n_m}``.  For each prototile
    ``N_l`` the sensors at ``n_k + T_l`` are scheduled at slot ``k``
    whenever ``n_k`` belongs to ``N_l``: i.e. a sensor's slot is the index
    of its cell (within its covering tile) in the union enumeration.
    """

    def __init__(self, multi: MultiTiling,
                 cells: Sequence[IntVec] | None = None):
        union = multi.union_prototile()
        if cells is None:
            cells = union.sorted_cells()
        else:
            cells = [as_intvec(c) for c in cells]
            require(set(cells) == set(union.cells),
                    "cells must enumerate the union of the prototiles")
        super().__init__(len(cells))
        self.multi = multi
        self.cells = list(cells)
        self._slot_by_cell = {cell: k for k, cell in enumerate(cells)}

    def slot_of(self, point: Sequence[int]) -> int:
        _, _, cell = self.multi.decompose(point)
        return self._slot_by_cell[cell]

    def neighborhood_of(self, point: Sequence[int]) -> frozenset[IntVec]:
        """Deployment-D1 interference set of the sensor at ``point``."""
        return self.multi.neighborhood_of(point)


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------
Collision = tuple[IntVec, IntVec]


def conflict_offsets(prototiles: Iterable[Prototile]) -> frozenset[IntVec]:
    """All nonzero offsets ``y - x`` at which two sensors *could* conflict.

    Sensors at ``x`` (type ``N_k``) and ``y`` (type ``N_l``) have
    intersecting ranges iff ``y - x`` is in ``N_k - N_l``; the union over
    all type pairs bounds the search neighborhood for verification.
    """
    tiles = list(prototiles)
    offsets: set[IntVec] = set()
    for a in tiles:
        for b in tiles:
            for p in a.cells:
                for q in b.cells:
                    offsets.add(vsub(p, q))
    offsets.discard((0,) * tiles[0].dimension)
    return frozenset(offsets)


def find_collisions(schedule: Schedule,
                    points: Iterable[Sequence[int]],
                    neighborhood_of: NeighborhoodFn,
                    offsets: Iterable[IntVec] | None = None,
                    ) -> list[Collision]:
    """All colliding sensor pairs among ``points`` under the schedule.

    A pair ``(x, y)`` collides when the sensors share a slot and their
    interference ranges intersect — the exact condition the paper's
    schedules must avoid.

    Args:
        schedule: slot assignment to check.
        points: the sensors (finite window of the lattice).
        neighborhood_of: maps a sensor to its interference set (pass the
            schedule's ``neighborhood_of`` for Theorem 1/2 schedules).
        offsets: optional candidate conflict offsets; computed from the
            neighborhoods of the points when omitted.
    """
    point_list = [as_intvec(p) for p in points]
    point_set = set(point_list)
    if offsets is None:
        # Rebase each neighborhood to the origin and deduplicate: a
        # homogeneous window has one shape, a D1 deployment a few.
        shapes: set[frozenset[IntVec]] = set()
        for p in point_list:
            cells = neighborhood_of(p)
            anchor = p
            shapes.add(frozenset(vsub(c, anchor) for c in cells))
        prototiles = [
            Prototile(shape | {(0,) * len(point_list[0])},
                      name=f"window-{index}")
            for index, shape in enumerate(sorted(shapes, key=sorted))
        ]
        offsets = conflict_offsets(prototiles)
    collisions: list[Collision] = []
    slot_cache = {p: schedule.slot_of(p) for p in point_list}
    for x in point_list:
        range_x = neighborhood_of(x)
        for delta in offsets:
            y = vadd(x, delta)
            if y <= x or y not in point_set:
                continue
            if slot_cache[x] != slot_cache[y]:
                continue
            if range_x & neighborhood_of(y):
                collisions.append((x, y))
    return collisions


def verify_collision_free(schedule: Schedule,
                          points: Iterable[Sequence[int]],
                          neighborhood_of: NeighborhoodFn,
                          offsets: Iterable[IntVec] | None = None) -> bool:
    """True when no pair of sensors in ``points`` collides."""
    return not find_collisions(schedule, points, neighborhood_of, offsets)
