"""Deterministic periodic broadcast schedules and their verification.

A schedule assigns each sensor (lattice point) a slot ``k`` in
``{0, ..., m-1}``; the sensor may broadcast at time ``t`` iff
``t = k (mod m)``.  (The paper indexes slots ``1..m``; we use ``0..m-1``
throughout the library and ``1..m`` only when rendering figures.)

A schedule is *collision-free* when no two distinct sensors with
intersecting interference ranges share a slot.  For sensors at ``x`` and
``y`` with neighborhoods ``x + N_x`` and ``y + N_y`` the ranges intersect
iff ``y - x`` lies in the difference set ``N_x - N_y``, so verification
over a window costs ``O(|window| * |offsets|)`` instead of comparing all
pairs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.engine.collisions import scan_collisions
from repro.engine.slots import CosetTable, as_point_batch
from repro.tiles.prototile import Prototile
from repro.tiling.base import Tiling
from repro.tiling.multi import MultiTiling
from repro.utils.vectors import IntVec, as_intvec, vadd, vsub
from repro.utils.validation import require

__all__ = [
    "Schedule",
    "MappingSchedule",
    "TilingSchedule",
    "MultiTilingSchedule",
    "Collision",
    "conflict_offsets",
    "find_collisions",
    "verify_collision_free",
]

NeighborhoodFn = Callable[[IntVec], frozenset[IntVec]]


class Schedule:
    """Base class: a periodic slot assignment for lattice points."""

    def __init__(self, num_slots: int):
        require(num_slots >= 1, "a schedule needs at least one slot")
        self.num_slots = num_slots

    def slot_of(self, point: Sequence[int]) -> int:
        """Slot of the sensor at ``point`` (in ``0..num_slots-1``)."""
        raise NotImplementedError

    def slots_of(self, points: Iterable[Sequence[int]]) -> list[int]:
        """Slots of many sensors at once.

        Semantically ``[self.slot_of(p) for p in points]``; subclasses
        with coset structure dispatch to the vectorized engine kernel.
        """
        return [self.slot_of(p) for p in points]

    def may_send(self, point: Sequence[int], time: int) -> bool:
        """True when the sensor at ``point`` owns time step ``time``."""
        return time % self.num_slots == self.slot_of(point)

    def senders_at(self, time: int,
                   points: Iterable[Sequence[int]]) -> list[IntVec]:
        """The subset of ``points`` scheduled at the given time step."""
        slot = time % self.num_slots
        return [as_intvec(p) for p in points if self.slot_of(p) == slot]


class MappingSchedule(Schedule):
    """A finite schedule backed by an explicit point -> slot mapping.

    Produced by the graph-coloring baselines and by restriction of an
    infinite schedule to a finite region.
    """

    def __init__(self, assignment: Mapping[IntVec, int]):
        require(len(assignment) > 0, "assignment must not be empty")
        slots = set(assignment.values())
        require(all(s >= 0 for s in slots), "slots must be nonnegative")
        super().__init__(max(slots) + 1)
        self._assignment = dict(assignment)

    def slot_of(self, point: Sequence[int]) -> int:
        key = as_intvec(point)
        try:
            return self._assignment[key]
        except KeyError:
            raise KeyError(f"point {key} is not covered by this schedule") \
                from None

    @property
    def points(self) -> list[IntVec]:
        """The finite domain of the schedule."""
        return sorted(self._assignment)

    def used_slots(self) -> int:
        """Number of distinct slots actually used."""
        return len(set(self._assignment.values()))


class TilingSchedule(Schedule):
    """The Theorem 1 schedule: slots from a tiling of the lattice.

    With ``N = {n_1, ..., n_m}`` (the ``cells`` order) and translate set
    ``T``, the sensor at ``n_k + t`` gets slot ``k``; equivalently
    ``slot_of(x) = index of the cell of x's unique tile decomposition``.
    """

    def __init__(self, tiling: Tiling, cells: Sequence[IntVec] | None = None):
        prototile = tiling.prototile
        if cells is None:
            cells = prototile.sorted_cells()
        else:
            cells = [as_intvec(c) for c in cells]
            require(set(cells) == set(prototile.cells),
                    "cells must enumerate the prototile exactly")
        super().__init__(len(cells))
        self.tiling = tiling
        self.cells = list(cells)
        self._slot_by_cell = {cell: k for k, cell in enumerate(cells)}
        self._slot_table: CosetTable | None = None
        self._slot_table_ready = False

    def slot_of(self, point: Sequence[int]) -> int:
        _, cell = self.tiling.decompose(point)
        return self._slot_by_cell[cell]

    def slots_of(self, points: Iterable[Sequence[int]]) -> list[int]:
        table = self._coset_table()
        if table is None:
            return [self.slot_of(p) for p in points]
        return table.lookup(as_point_batch(points))

    def _coset_table(self) -> CosetTable | None:
        if not self._slot_table_ready:
            structure = self.tiling.coset_structure()
            if structure is not None:
                period, cell_by_representative = structure
                self._slot_table = CosetTable(
                    period,
                    {representative: self._slot_by_cell[cell]
                     for representative, cell
                     in cell_by_representative.items()})
            self._slot_table_ready = True
        return self._slot_table

    @property
    def prototile(self) -> Prototile:
        return self.tiling.prototile

    def neighborhood_of(self, point: Sequence[int]) -> frozenset[IntVec]:
        """Homogeneous interference set ``point + N``."""
        return self.prototile.translate(as_intvec(point))

    def slot_class_translations(self, slot: int, lo: Sequence[int],
                                hi: Sequence[int]) -> list[IntVec]:
        """Senders of a slot inside a box: the set ``n_slot + T``.

        Figure 3 observes that the senders of any one slot, together with
        their neighborhoods, again form a tiling of the lattice — this
        accessor exposes the senders so tests can verify that claim.
        """
        cell = self.cells[slot]
        return [vadd(t, cell)
                for t in self.tiling.translations_in_box(lo, hi)]


class MultiTilingSchedule(Schedule):
    """The Theorem 2 schedule for multi-prototile tilings.

    Let ``N = N_1 | ... | N_n = {n_1, ..., n_m}``.  For each prototile
    ``N_l`` the sensors at ``n_k + T_l`` are scheduled at slot ``k``
    whenever ``n_k`` belongs to ``N_l``: i.e. a sensor's slot is the index
    of its cell (within its covering tile) in the union enumeration.
    """

    def __init__(self, multi: MultiTiling,
                 cells: Sequence[IntVec] | None = None):
        union = multi.union_prototile()
        if cells is None:
            cells = union.sorted_cells()
        else:
            cells = [as_intvec(c) for c in cells]
            require(set(cells) == set(union.cells),
                    "cells must enumerate the union of the prototiles")
        super().__init__(len(cells))
        self.multi = multi
        self.cells = list(cells)
        self._slot_by_cell = {cell: k for k, cell in enumerate(cells)}
        self._slot_table: CosetTable | None = None

    def slot_of(self, point: Sequence[int]) -> int:
        _, _, cell = self.multi.decompose(point)
        return self._slot_by_cell[cell]

    def slots_of(self, points: Iterable[Sequence[int]]) -> list[int]:
        if self._slot_table is None:
            period, cell_by_representative = self.multi.coset_structure()
            self._slot_table = CosetTable(
                period,
                {representative: self._slot_by_cell[cell]
                 for representative, cell in cell_by_representative.items()})
        return self._slot_table.lookup(as_point_batch(points))

    def neighborhood_of(self, point: Sequence[int]) -> frozenset[IntVec]:
        """Deployment-D1 interference set of the sensor at ``point``."""
        return self.multi.neighborhood_of(point)


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------
Collision = tuple[IntVec, IntVec]


def conflict_offsets(prototiles: Iterable[Prototile]) -> frozenset[IntVec]:
    """All nonzero offsets ``y - x`` at which two sensors *could* conflict.

    Sensors at ``x`` (type ``N_k``) and ``y`` (type ``N_l``) have
    intersecting ranges iff ``y - x`` is in ``N_k - N_l``; the union over
    all type pairs bounds the search neighborhood for verification.

    ``prototiles`` may be any iterable (including a one-shot generator);
    it is materialized before the pairwise loop.

    Raises:
        ValueError: if ``prototiles`` is empty.
    """
    tiles = list(prototiles)
    if not tiles:
        raise ValueError("need at least one prototile")
    offsets: set[IntVec] = set()
    for a in tiles:
        for b in tiles:
            for p in a.cells:
                for q in b.cells:
                    offsets.add(vsub(p, q))
    offsets.discard((0,) * tiles[0].dimension)
    return frozenset(offsets)


# Beyond this many distinct neighborhood shapes the pairwise difference
# sets the bulk scan precomputes stop paying off; verification then keeps
# the direct per-pair range-intersection test.
_MAX_SHAPE_CLASSES = 32


def _origin_shapes(point_list: list[IntVec],
                   neighborhood_of: NeighborhoodFn,
                   ) -> tuple[list[frozenset[IntVec]], list[int]]:
    """Classify points by interference shape (neighborhood rebased to 0).

    Returns ``(shapes, shape_ids)``.  Known homogeneous / deployment-D1
    neighborhood functions are recognized so the classification itself is
    O(1) or vectorized; arbitrary callables fall back to rebasing each
    point's neighborhood.
    """
    owner = getattr(neighborhood_of, "__self__", None)
    func = getattr(neighborhood_of, "__func__", None)
    if (isinstance(owner, TilingSchedule)
            and func is TilingSchedule.neighborhood_of):
        return [frozenset(owner.prototile.cells)], [0] * len(point_list)
    multi = None
    if (isinstance(owner, MultiTilingSchedule)
            and func is MultiTilingSchedule.neighborhood_of):
        multi = owner.multi
    elif isinstance(owner, MultiTiling) and func is MultiTiling.neighborhood_of:
        multi = owner
    if multi is not None:
        shapes = [frozenset(tile.cells) for tile in multi.prototiles]
        return shapes, multi.prototile_indices(point_list)
    shapes = []
    shape_ids = []
    index: dict[frozenset[IntVec], int] = {}
    for point in point_list:
        shape = frozenset(vsub(cell, point)
                          for cell in neighborhood_of(point))
        shape_id = index.get(shape)
        if shape_id is None:
            shape_id = len(shapes)
            index[shape] = shape_id
            shapes.append(shape)
        shape_ids.append(shape_id)
    return shapes, shape_ids


def find_collisions(schedule: Schedule,
                    points: Iterable[Sequence[int]],
                    neighborhood_of: NeighborhoodFn,
                    offsets: Iterable[IntVec] | None = None,
                    ) -> list[Collision]:
    """All colliding sensor pairs among ``points`` under the schedule.

    A pair ``(x, y)`` collides when the sensors share a slot and their
    interference ranges intersect — the exact condition the paper's
    schedules must avoid.  The scan runs on the bulk engine
    (:mod:`repro.engine.collisions`): vectorized with numpy when
    available, pure Python otherwise, with identical results.

    Args:
        schedule: slot assignment to check.
        points: the sensors (finite window of the lattice).
        neighborhood_of: maps a sensor to its interference set (pass the
            schedule's ``neighborhood_of`` for Theorem 1/2 schedules).
        offsets: optional candidate conflict offsets; computed from the
            neighborhoods of the points when omitted.  Any iterable is
            accepted — a one-shot generator is materialized up front, so
            it is scanned in full for every point.

    Returns:
        The colliding pairs, each ordered ``x < y`` and the list sorted —
        a canonical order independent of backend and input ordering.
    """
    point_list = [as_intvec(p) for p in points]
    if not point_list:
        return []
    offset_list = None if offsets is None else list(offsets)
    shapes, shape_ids = _origin_shapes(point_list, neighborhood_of)
    if offset_list is None:
        # Candidate offsets from the deduplicated window shapes: a
        # homogeneous window has one shape, a D1 deployment a few.
        origin = (0,) * len(point_list[0])
        unique = sorted({shape | {origin} for shape in shapes}, key=sorted)
        prototiles = [Prototile(cells, name=f"window-{index}")
                      for index, cells in enumerate(unique)]
        offset_list = sorted(conflict_offsets(prototiles))
    # ``schedule`` is duck-typed; only ``slot_of`` is required.
    bulk_slots = getattr(schedule, "slots_of", None)
    if bulk_slots is not None:
        slots = bulk_slots(point_list)
    else:
        slots = [schedule.slot_of(p) for p in point_list]
    if len(shapes) <= _MAX_SHAPE_CLASSES:
        return scan_collisions(point_list, slots, shape_ids, shapes,
                               offset_list)
    # Degenerate windows with very many distinct shapes: test ranges
    # directly instead of materializing pairwise difference sets.
    point_index: dict[IntVec, int] = {}
    for i, point in enumerate(point_list):
        point_index.setdefault(point, i)
    collisions: list[Collision] = []
    for i, x in enumerate(point_list):
        range_x = neighborhood_of(x)
        for delta in offset_list:
            y = vadd(x, delta)
            if y <= x:
                continue
            j = point_index.get(y)
            if j is None or slots[j] != slots[i]:
                continue
            if range_x & neighborhood_of(y):
                collisions.append((x, y))
    collisions.sort()
    return collisions


def verify_collision_free(schedule: Schedule,
                          points: Iterable[Sequence[int]],
                          neighborhood_of: NeighborhoodFn,
                          offsets: Iterable[IntVec] | None = None) -> bool:
    """True when no pair of sensors in ``points`` collides."""
    return not find_collisions(schedule, points, neighborhood_of, offsets)
