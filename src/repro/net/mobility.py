"""Mobile sensors: random-waypoint motion plus the Section 5 send rule.

The mobile experiment plants a fleet of sensors moving in a rectangle by
the random-waypoint model.  Two MAC disciplines are compared:

* :class:`MobileTilingMAC` — the paper's conclusions rule: a sensor may
  send only in the slot owned by its current Voronoi cell's lattice point
  and only if its interference disk fits inside that point's tile
  (implemented by :class:`repro.core.mobile.MobileScheduler`);
* :class:`MobileAlohaMAC` — the probabilistic strawman: send with
  probability ``p`` regardless of location.

Collision semantics mirror the paper's rules in the continuous setting:
a receiver within distance ``r`` of two simultaneous senders hears
neither; a transmitting sensor cannot receive.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    # Annotations only — runtime randomness flows through make_rng.
    import random

from repro.core.mobile import MobileScheduler
from repro.net.metrics import SimulationMetrics
from repro.utils.rng import make_rng
from repro.utils.validation import require, require_positive, require_probability

__all__ = [
    "RandomWaypoint",
    "MobileTilingMAC",
    "MobileAlohaMAC",
    "MobileSimulator",
]

Position = tuple[float, float]


class RandomWaypoint:
    """Random-waypoint mobility in an axis-aligned rectangle.

    Each sensor picks a uniform destination and moves toward it at its
    speed; on arrival it picks a new destination.  Deterministic given the
    seed.
    """

    def __init__(self, bounds: tuple[float, float, float, float],
                 speed: float, count: int,
                 seed: int | random.Random | None = None):
        require_positive(speed, "speed")
        require_positive(count, "count")
        x_min, y_min, x_max, y_max = bounds
        require(x_min < x_max and y_min < y_max, "degenerate bounds")
        self.bounds = bounds
        self.speed = speed
        self.rng = make_rng(seed)
        self.positions: list[Position] = [self._random_point()
                                          for _ in range(count)]
        self._targets: list[Position] = [self._random_point()
                                         for _ in range(count)]

    def _random_point(self) -> Position:
        x_min, y_min, x_max, y_max = self.bounds
        return (self.rng.uniform(x_min, x_max),
                self.rng.uniform(y_min, y_max))

    def step(self, dt: float = 1.0) -> list[Position]:
        """Advance all sensors by ``dt`` time units; returns positions."""
        for i, (position, target) in enumerate(zip(self.positions,
                                                   self._targets)):
            px, py = position
            tx, ty = target
            distance = math.hypot(tx - px, ty - py)
            travel = self.speed * dt
            if distance <= travel:
                self.positions[i] = target
                self._targets[i] = self._random_point()
            else:
                scale = travel / distance
                self.positions[i] = (px + (tx - px) * scale,
                                     py + (ty - py) * scale)
        return list(self.positions)


class MobileTilingMAC:
    """Section 5 rule: correct location slot + interference fits in tile.

    The paper assumes "the lattice points are spaced fine enough to ensure
    that only one sensor is within a Voronoi region of a lattice point".
    With random motion two sensors may still share a cell, so the
    simulator arbitrates occupancy per slot (closest-to-center sensor owns
    the cell) and passes ``sole_occupant``; non-occupants defer, which is
    exactly the paper's assumption made operational.
    """

    name = "mobile-tiling"

    def __init__(self, scheduler: MobileScheduler):
        self.scheduler = scheduler

    def owner_of(self, position: Position):
        """Cell-ownership key used by the simulator's arbitration."""
        return self.scheduler.owner_of(position)

    def wants_to_send(self, position: Position, radius: float, time: int,
                      rng: random.Random, sole_occupant: bool = True) -> bool:
        if not sole_occupant:
            return False
        return self.scheduler.may_send(position, radius, time)


class MobileAlohaMAC:
    """Probabilistic baseline: send with probability ``p`` each slot."""

    def __init__(self, p: float):
        require_probability(p, "p")
        self.p = p
        self.name = f"mobile-aloha(p={p:g})"

    def wants_to_send(self, position: Position, radius: float, time: int,
                      rng: random.Random, sole_occupant: bool = True) -> bool:
        return rng.random() < self.p


class MobileSimulator:
    """Slotted simulation of mobile sensors broadcasting to neighbors.

    Each slot the fleet moves, backlogged sensors consult the MAC, and
    receptions resolve under the paper's collision rules with geometric
    (disk) interference: receiver ``c`` hears sender ``a`` iff
    ``dist(a, c) <= radius``, ``c`` is not itself transmitting, and no
    other sender ``b`` has ``dist(b, c) <= radius``.

    A broadcast succeeds when all current neighbors received it; packets
    retry until delivered (counting wasted energy).
    """

    def __init__(self, mobility: RandomWaypoint, mac,
                 radius: float, packet_interval: int = 1,
                 seed: int | None = None):
        require_positive(radius, "radius")
        require_positive(packet_interval, "packet_interval")
        self.mobility = mobility
        self.mac = mac
        self.radius = radius
        self.packet_interval = packet_interval
        self.rng = make_rng(seed)
        self.metrics = SimulationMetrics(protocol=mac.name,
                                         num_sensors=len(mobility.positions))
        self._backlog: list[list[int]] = [[] for _ in mobility.positions]
        self._time = 0

    def _neighbors(self, positions: Sequence[Position],
                   index: int) -> list[int]:
        px, py = positions[index]
        result = []
        for j, (qx, qy) in enumerate(positions):
            if j != index and math.hypot(px - qx, py - qy) <= self.radius:
                result.append(j)
        return result

    def step(self) -> list[int]:
        """Advance one slot; returns indices of transmitting sensors."""
        time = self._time
        positions = self.mobility.step()
        if time % self.packet_interval == 0:
            for queue in self._backlog:
                queue.append(time)
                self.metrics.packets_created += 1

        # Cell-occupancy arbitration (paper's one-sensor-per-cell rule):
        # the sensor closest to its cell's lattice point is sole occupant.
        sole = [True] * len(positions)
        if hasattr(self.mac, "owner_of"):
            claims: dict = {}
            for i, position in enumerate(positions):
                owner = self.mac.owner_of(position)
                center = self.mac.scheduler.lattice.to_real(owner)
                distance = math.hypot(position[0] - center[0],
                                      position[1] - center[1])
                best = claims.get(owner)
                if best is None or distance < best[0]:
                    claims[owner] = (distance, i)
            winners = {i for _, i in claims.values()}
            sole = [i in winners for i in range(len(positions))]

        transmitters = [
            i for i, queue in enumerate(self._backlog)
            if queue and self.mac.wants_to_send(positions[i], self.radius,
                                                time, self.rng, sole[i])
        ]
        transmitter_set = set(transmitters)
        self.metrics.transmissions += len(transmitters)
        self.metrics.energy_transmit += float(len(transmitters))

        for sender in transmitters:
            neighbors = self._neighbors(positions, sender)
            all_received = True
            for receiver in neighbors:
                if receiver in transmitter_set:
                    self.metrics.failed_receptions += 1
                    all_received = False
                    continue
                covering = [
                    b for b in transmitter_set
                    if math.hypot(positions[b][0] - positions[receiver][0],
                                  positions[b][1] - positions[receiver][1])
                    <= self.radius
                ]
                if len(covering) > 1:
                    self.metrics.failed_receptions += 1
                    all_received = False
            if all_received:
                created = self._backlog[sender].pop(0)
                self.metrics.successful_broadcasts += 1
                self.metrics.packets_delivered += 1
                self.metrics.total_latency += time - created

        self._time += 1
        self.metrics.slots = self._time
        return transmitters

    def run(self, slots: int) -> SimulationMetrics:
        """Simulate the given number of slots."""
        require_positive(slots, "slots")
        for _ in range(slots):
            self.step()
        return self.metrics
