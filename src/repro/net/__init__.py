"""Slotted wireless broadcast simulator with the paper's collision rules."""

from repro.net.energy import UNIT_TX_MODEL, EnergyModel
from repro.net.metrics import SimulationMetrics, metrics_table
from repro.net.mobility import (
    MobileAlohaMAC,
    MobileSimulator,
    MobileTilingMAC,
    RandomWaypoint,
)
from repro.net.model import Network, SensorNode
from repro.net.protocols import (
    CSMALike,
    GlobalTDMA,
    MACProtocol,
    ProtocolContext,
    ScheduleMAC,
    SlottedAloha,
    make_protocol,
    protocol_names,
    register_protocol,
)
from repro.net.simulator import BroadcastSimulator, compare_protocols, simulate

__all__ = [
    "BroadcastSimulator",
    "CSMALike",
    "EnergyModel",
    "UNIT_TX_MODEL",
    "GlobalTDMA",
    "MACProtocol",
    "MobileAlohaMAC",
    "MobileSimulator",
    "MobileTilingMAC",
    "Network",
    "ProtocolContext",
    "RandomWaypoint",
    "ScheduleMAC",
    "SensorNode",
    "SimulationMetrics",
    "SlottedAloha",
    "compare_protocols",
    "make_protocol",
    "metrics_table",
    "protocol_names",
    "register_protocol",
    "simulate",
]
