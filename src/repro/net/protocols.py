"""MAC protocols: when does a sensor decide to transmit?

The paper contrasts its deterministic tiling schedule with the
probabilistic protocols "most communication protocols for wireless sensor
networks" use.  Four policies are provided:

* :class:`ScheduleMAC` — drives any :class:`repro.core.schedule.Schedule`
  (tiling schedules, Theorem 2 schedules, coloring-based schedules);
* :class:`GlobalTDMA` — the paper's strawman: one slot per sensor,
  round-robin; collision-free but with a round length that grows with
  the network;
* :class:`SlottedAloha` — transmit pending packets with probability ``p``;
* :class:`CSMALike` — probabilistic, but defers when a sensor whose range
  covers this one transmitted in the previous slot (a crude carrier
  sense).

A protocol sees only local information: its own position, the time, and
last slot's activity as observed at its position.

Decisions come in two granularities.  ``wants_to_send`` is the scalar
interface — one sensor, one slot.  ``decision_block`` is the bulk
interface the simulator drives: a whole ``(slot, sensor)`` window of
decisions at once, drawn from the counter-based
:class:`repro.utils.rng.StreamRNG` so each sensor's randomness is keyed
by ``(seed, sensor, slot)`` and the two granularities agree bit-for-bit.

Protocols also resolve *by name* through the registry at the bottom of
this module (``make_protocol("aloha", p=0.2)``), which is what lets the
:class:`repro.api.Session` facade accept ``simulate(protocol="aloha",
p=0.2)`` request-style instead of requiring constructed objects.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    # Annotations only — runtime draws arrive via the rng parameter.
    import random

from repro.core.schedule import Schedule
from repro.engine.randmac import bernoulli_block, masked_bernoulli_block
from repro.utils.rng import StreamDraw, StreamRNG
from repro.utils.validation import require_probability
from repro.utils.vectors import IntVec, as_intvec

__all__ = ["MACProtocol", "ScheduleMAC", "GlobalTDMA", "SlottedAloha",
           "CSMALike", "ProtocolContext", "register_protocol",
           "protocol_names", "make_protocol"]


class MACProtocol(abc.ABC):
    """Decision interface: should a backlogged sensor transmit now?"""

    name = "mac"

    #: Whether decisions may depend on ``heard_last_slot``.  The
    #: simulator dispatches carrier-sensing protocols one slot at a time
    #: (the carrier-sense vector only exists after the previous slot
    #: resolves); protocols that set this ``False`` promise to ignore the
    #: argument, which lets whole windows of decisions be precomputed.
    #: Conservative default: ``True``.
    uses_carrier_sense = True

    @abc.abstractmethod
    def wants_to_send(self, position: IntVec, time: int,
                      heard_last_slot: bool,
                      rng: random.Random | StreamDraw) -> bool:
        """Decide whether the sensor at ``position`` transmits at ``time``.

        Args:
            position: the sensor's lattice coordinates.
            time: current slot number.
            heard_last_slot: whether any sensor covering this position
                transmitted in the previous slot (local carrier sense).
            rng: random source for this decision (unused by
                deterministic protocols).  On the bulk simulator path
                this is a :class:`repro.utils.rng.StreamDraw` over the
                sensor's own ``(sensor, slot)`` counter cell.
        """

    def decision_block(self, positions: Sequence[IntVec], t0: int, t1: int,
                       heard: Sequence[bool], rng: StreamRNG):
        """Transmit decisions for every sensor over slots ``t0..t1-1``.

        Returns a matrix indexed ``[t - t0][i]`` of booleans, aligned
        with ``positions`` (dense sensor ids).  ``heard`` is the
        carrier-sense vector for slot ``t0``; protocols with
        :attr:`uses_carrier_sense` set are only ever called with
        single-slot windows, and later slots of a multi-slot window see
        ``False``.

        The default implementation is the scalar reference: one
        ``wants_to_send`` call per cell, each served by the per-sensor
        counter stream ``rng.draw(i, t)``.  Vectorized overrides (the
        random protocols below) must return the same booleans — the
        backend-equivalence suite holds them to it.
        """
        rows = []
        sensors = range(len(positions))
        draw = rng.draw(0, t0)  # one adapter, re-pointed per cell
        for t in range(t0, t1):
            if t == t0:
                rows.append([self.wants_to_send(positions[i], t,
                                                bool(heard[i]),
                                                draw.rebind(i, t))
                             for i in sensors])
            else:
                rows.append([self.wants_to_send(positions[i], t, False,
                                                draw.rebind(i, t))
                             for i in sensors])
        return rows

    def slots_per_round(self) -> int | None:
        """Round length for periodic protocols, ``None`` for random ones."""
        return None

    def slot_table(self, positions: Sequence[IntVec]) -> list[int] | None:
        """Per-position slots for purely periodic protocols.

        When this returns a list ``s`` (aligned with ``positions``) the
        protocol promises ``wants_to_send(positions[i], t, ...) ==
        (t % slots_per_round() == s[i])`` — a pure function of time that
        never touches the rng — and the simulator precomputes decisions
        for all sensors at once instead of querying them one by one.
        Probabilistic protocols return ``None`` (the default).
        """
        return None


class ScheduleMAC(MACProtocol):
    """Deterministic MAC driven by a periodic schedule."""

    uses_carrier_sense = False

    def __init__(self, schedule: Schedule, name: str = "tiling-schedule"):
        self.schedule = schedule
        self.name = name

    def wants_to_send(self, position: IntVec, time: int,
                      heard_last_slot: bool, rng: random.Random) -> bool:
        return self.schedule.may_send(position, time)

    def slots_per_round(self) -> int | None:
        return self.schedule.num_slots

    def slot_table(self, positions: Sequence[IntVec]) -> list[int] | None:
        slots_of = getattr(self.schedule, "slots_of", None)
        if slots_of is not None:
            return slots_of(positions)
        return [self.schedule.slot_of(p) for p in positions]


class GlobalTDMA(MACProtocol):
    """One slot per sensor, round-robin over the whole network.

    "The obvious disadvantage of TDMA is that it does not scale: if the
    number k of sensors is large, then the sensors cannot communicate
    frequently enough" — the round length equals the network size.
    """

    name = "global-tdma"
    uses_carrier_sense = False

    def __init__(self, positions: Sequence[IntVec]):
        ordered = sorted(as_intvec(p) for p in positions)
        self._slot_of = {p: i for i, p in enumerate(ordered)}

    @property
    def num_slots(self) -> int:
        return len(self._slot_of)

    def wants_to_send(self, position: IntVec, time: int,
                      heard_last_slot: bool, rng: random.Random) -> bool:
        return time % self.num_slots == self._slot_of[as_intvec(position)]

    def slots_per_round(self) -> int | None:
        return self.num_slots

    def slot_table(self, positions: Sequence[IntVec]) -> list[int] | None:
        return [self._slot_of[as_intvec(p)] for p in positions]


class SlottedAloha(MACProtocol):
    """Transmit each pending packet with probability ``p`` per slot."""

    uses_carrier_sense = False

    def __init__(self, p: float):
        require_probability(p, "p")
        self.p = p
        self.name = f"slotted-aloha(p={p:g})"

    def wants_to_send(self, position: IntVec, time: int,
                      heard_last_slot: bool,
                      rng: random.Random | StreamDraw) -> bool:
        return rng.random() < self.p

    def decision_block(self, positions: Sequence[IntVec], t0: int, t1: int,
                       heard: Sequence[bool], rng: StreamRNG):
        if type(self).wants_to_send is not SlottedAloha.wants_to_send:
            # a subclass changed the scalar rule: honor it
            return super().decision_block(positions, t0, t1, heard, rng)
        return bernoulli_block(rng, len(positions), t0, t1, self.p)


class CSMALike(MACProtocol):
    """ALOHA with one-slot carrier-sense backoff.

    If a covering sensor transmitted last slot, stay silent; otherwise
    behave like slotted ALOHA with probability ``p``.  Still collision-
    prone (two sensors can start in the same slot), as the experiments
    show.
    """

    uses_carrier_sense = True

    def __init__(self, p: float):
        require_probability(p, "p")
        self.p = p
        self.name = f"csma-like(p={p:g})"

    def wants_to_send(self, position: IntVec, time: int,
                      heard_last_slot: bool,
                      rng: random.Random | StreamDraw) -> bool:
        if heard_last_slot:
            return False
        return rng.random() < self.p

    def decision_block(self, positions: Sequence[IntVec], t0: int, t1: int,
                       heard: Sequence[bool], rng: StreamRNG):
        if type(self).wants_to_send is not CSMALike.wants_to_send:
            # a subclass changed the scalar rule: honor it
            return super().decision_block(positions, t0, t1, heard, rng)
        return masked_bernoulli_block(rng, len(positions), t0, t1, self.p,
                                      heard)


# ----------------------------------------------------------------------
# Protocol registry: resolve protocols by name (the facade's request
# surface), with the deployment context injected by the caller.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProtocolContext:
    """What a named protocol may need from its deployment.

    Attributes:
        positions: the network's sensor positions (``tdma`` needs them
            for its one-slot-per-sensor round).
        schedule: a periodic schedule (``schedule`` wraps it in a
            :class:`ScheduleMAC`).
    """

    positions: tuple[IntVec, ...] | None = None
    schedule: Schedule | None = None

    def require_positions(self, name: str) -> tuple[IntVec, ...]:
        if self.positions is None:
            raise ValueError(
                f"protocol {name!r} needs the sensor positions; resolve it "
                f"through a network-aware caller (simulate / Session)")
        return self.positions

    def require_schedule(self, name: str) -> Schedule:
        if self.schedule is None:
            raise ValueError(
                f"protocol {name!r} needs a schedule; resolve it through "
                f"repro.api.Session.simulate (or construct ScheduleMAC "
                f"directly)")
        return self.schedule


#: factory(context, **params) -> MACProtocol
ProtocolFactory = Callable[..., MACProtocol]

_REGISTRY: dict[str, ProtocolFactory] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_protocol(name: str, factory: ProtocolFactory | None = None,
                      *, overwrite: bool = False):
    """Register a named protocol factory (usable as a decorator).

    The factory is called as ``factory(context, **params)`` where
    ``context`` is a :class:`ProtocolContext`; names are matched
    case-insensitively with ``_``/``-`` folded together.

    Raises:
        ValueError: when the name is already taken and ``overwrite`` is
            not set — shadowing a built-in silently would change what
            every ``simulate(protocol=...)`` call means.
    """
    key = _normalize(name)

    def _register(fn: ProtocolFactory) -> ProtocolFactory:
        if not overwrite and key in _REGISTRY:
            raise ValueError(
                f"protocol name {key!r} is already registered; pass "
                f"overwrite=True to replace it")
        _REGISTRY[key] = fn
        return fn

    if factory is None:
        return _register
    return _register(factory)


def protocol_names() -> tuple[str, ...]:
    """The registered protocol names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_protocol(name: str, /, *,
                  positions: Sequence[IntVec] | None = None,
                  schedule: Schedule | None = None,
                  **params) -> MACProtocol:
    """Build a registered protocol by name.

    Args:
        name: a registered name (see :func:`protocol_names`).
        positions: sensor positions, for protocols that need the
            deployment (``tdma``).
        schedule: a schedule, for ``schedule``-driven MACs.
        **params: forwarded to the factory (e.g. ``p=0.2`` for
            ``aloha``/``csma``).

    Raises:
        KeyError: for an unknown name (listing the known ones).
    """
    key = _normalize(name)
    try:
        factory = _REGISTRY[key]
    except KeyError:
        known = ", ".join(protocol_names())
        raise KeyError(
            f"unknown protocol {name!r}; known: {known}") from None
    context = ProtocolContext(
        positions=None if positions is None
        else tuple(as_intvec(p) for p in positions),
        schedule=schedule)
    return factory(context, **params)


@register_protocol("aloha")
@register_protocol("slotted-aloha")
def _make_aloha(context: ProtocolContext, p: float) -> MACProtocol:
    return SlottedAloha(p)


@register_protocol("csma")
@register_protocol("csma-like")
def _make_csma(context: ProtocolContext, p: float) -> MACProtocol:
    return CSMALike(p)


@register_protocol("tdma")
@register_protocol("global-tdma")
def _make_tdma(context: ProtocolContext) -> MACProtocol:
    return GlobalTDMA(context.require_positions("tdma"))


@register_protocol("schedule")
@register_protocol("tiling-schedule")
def _make_schedule_mac(context: ProtocolContext,
                       name: str = "tiling-schedule") -> MACProtocol:
    return ScheduleMAC(context.require_schedule("schedule"), name=name)
