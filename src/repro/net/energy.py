"""Configurable energy accounting for the broadcast simulator.

The paper's motivation is energy: collided messages "need to be resent,
which is evidently a waste of energy".  The default model charges one
unit per transmission (so energy-per-delivered directly counts resends);
richer models also charge for receptions and idle listening, which is how
real sensor radios burn most of their budget — letting experiments show
that a deterministic schedule also enables duty-cycling (sensors know
when anything audible can happen).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_nonnegative

__all__ = ["EnergyModel", "UNIT_TX_MODEL"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs, in arbitrary units per slot/event.

    Attributes:
        tx_cost: energy per transmission.
        rx_cost: energy per (attempted) reception event.
        idle_cost: energy per slot spent idle-listening.
    """

    tx_cost: float = 1.0
    rx_cost: float = 0.0
    idle_cost: float = 0.0

    def __post_init__(self) -> None:
        require_nonnegative(self.tx_cost, "tx_cost")
        require_nonnegative(self.rx_cost, "rx_cost")
        require_nonnegative(self.idle_cost, "idle_cost")

    def slot_energy(self, transmitted: bool, receptions: int,
                    listening: bool) -> float:
        """Energy one sensor spends in one slot.

        Args:
            transmitted: the sensor transmitted this slot.
            receptions: number of reception events it was exposed to.
            listening: the sensor kept its radio on (idle listening);
                a schedule-aware sensor can sleep through slots in which
                no neighbor is scheduled.
        """
        energy = 0.0
        if transmitted:
            energy += self.tx_cost
        energy += self.rx_cost * receptions
        if listening and not transmitted:
            energy += self.idle_cost
        return energy


UNIT_TX_MODEL = EnergyModel(tx_cost=1.0, rx_cost=0.0, idle_cost=0.0)
