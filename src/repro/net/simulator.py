"""Slotted broadcast simulator implementing the paper's collision rules.

Time is slotted (the schedules assume "access to the current time,
represented by an integer t").  Each slot:

1. every backlogged sensor asks its MAC protocol whether to transmit;
2. receptions resolve under the paper's two collision rules —
   a transmitting sensor cannot receive, and a sensor covered by two or
   more simultaneous transmitters receives none of them;
3. a transmission whose *every* intended receiver got the message
   completes the broadcast (the packet leaves the queue); otherwise the
   packet stays queued and is retransmitted later — the energy waste the
   paper's introduction highlights.

Traffic model: every sensor generates one broadcast packet every
``packet_interval`` slots (deterministic sensing reports), queued FIFO.
"""

from __future__ import annotations

from collections import deque

from repro.net.energy import UNIT_TX_MODEL, EnergyModel
from repro.net.metrics import SimulationMetrics
from repro.net.model import Network
from repro.net.protocols import MACProtocol
from repro.utils.rng import make_rng
from repro.utils.validation import require_positive
from repro.utils.vectors import IntVec

__all__ = ["BroadcastSimulator", "simulate", "compare_protocols"]


class BroadcastSimulator:
    """Stateful slotted simulator for one network + MAC protocol pair."""

    def __init__(self, network: Network, protocol: MACProtocol,
                 packet_interval: int = 1,
                 seed: int | None = None,
                 energy_model: EnergyModel = UNIT_TX_MODEL):
        require_positive(packet_interval, "packet_interval")
        self.network = network
        self.protocol = protocol
        self.packet_interval = packet_interval
        self.energy_model = energy_model
        self.rng = make_rng(seed)
        self.metrics = SimulationMetrics(protocol=protocol.name,
                                         num_sensors=len(network))
        # FIFO of packet creation times per sensor.
        self._queues: dict[IntVec, deque[int]] = {
            p: deque() for p in network.positions
        }
        self._heard_last_slot: dict[IntVec, bool] = {
            p: False for p in network.positions
        }
        self._time = 0

    # ------------------------------------------------------------------
    @property
    def time(self) -> int:
        """Current slot number."""
        return self._time

    def pending_packets(self) -> int:
        """Packets still queued across all sensors."""
        return sum(len(q) for q in self._queues.values())

    def step(self) -> list[IntVec]:
        """Advance one slot; returns the sensors that transmitted."""
        time = self._time
        # Traffic generation.
        if time % self.packet_interval == 0:
            for queue in self._queues.values():
                queue.append(time)
                self.metrics.packets_created += 1

        # MAC decisions (only backlogged sensors transmit).
        transmitters = [
            position for position in self.network.positions
            if self._queues[position]
            and self.protocol.wants_to_send(position, time,
                                            self._heard_last_slot[position],
                                            self.rng)
        ]
        transmitter_set = set(transmitters)
        self.metrics.transmissions += len(transmitters)
        self.metrics.energy_transmit += \
            self.energy_model.tx_cost * len(transmitters)

        # Reception resolution per the paper's two rules.
        for sender in transmitters:
            receivers = self.network.receivers_of(sender)
            all_received = True
            for receiver in receivers:
                if receiver in transmitter_set:
                    # Rule 1: a simultaneous transmitter cannot receive.
                    self.metrics.failed_receptions += 1
                    all_received = False
                    continue
                covering = self.network.senders_covering(receiver)
                simultaneous = covering & transmitter_set
                if len(simultaneous) > 1:
                    # Rule 2: two covering transmitters destroy both.
                    self.metrics.failed_receptions += 1
                    all_received = False
            if all_received:
                created = self._queues[sender].popleft()
                self.metrics.successful_broadcasts += 1
                self.metrics.packets_delivered += 1
                self.metrics.total_latency += time - created

        # Update carrier-sense memory and non-transmit energy.
        model = self.energy_model
        charge_extras = model.rx_cost > 0 or model.idle_cost > 0
        for position in self.network.positions:
            covering = self.network.senders_covering(position)
            audible = covering & transmitter_set
            self._heard_last_slot[position] = bool(audible)
            if charge_extras:
                transmitted = position in transmitter_set
                receptions = len(audible - {position})
                self.metrics.energy_receive += model.rx_cost * receptions
                if not transmitted:
                    self.metrics.energy_idle += model.idle_cost

        self._time += 1
        self.metrics.slots = self._time
        return transmitters

    def run(self, slots: int) -> SimulationMetrics:
        """Simulate the given number of slots and return the metrics."""
        require_positive(slots, "slots")
        for _ in range(slots):
            self.step()
        return self.metrics


def simulate(network: Network, protocol: MACProtocol, slots: int,
             packet_interval: int = 1,
             seed: int | None = None,
             energy_model: EnergyModel = UNIT_TX_MODEL) -> SimulationMetrics:
    """One-shot convenience wrapper around :class:`BroadcastSimulator`."""
    simulator = BroadcastSimulator(network, protocol,
                                   packet_interval=packet_interval,
                                   seed=seed, energy_model=energy_model)
    return simulator.run(slots)


def compare_protocols(network: Network, protocols: list[MACProtocol],
                      slots: int, packet_interval: int = 1,
                      seed: int | None = None,
                      energy_model: EnergyModel = UNIT_TX_MODEL,
                      ) -> list[SimulationMetrics]:
    """Run each protocol on the same network and traffic pattern."""
    return [
        simulate(network, protocol, slots,
                 packet_interval=packet_interval, seed=seed,
                 energy_model=energy_model)
        for protocol in protocols
    ]
