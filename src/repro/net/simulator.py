"""Slotted broadcast simulator implementing the paper's collision rules.

Time is slotted (the schedules assume "access to the current time,
represented by an integer t").  Each slot:

1. every backlogged sensor asks its MAC protocol whether to transmit;
2. receptions resolve under the paper's two collision rules —
   a transmitting sensor cannot receive, and a sensor covered by two or
   more simultaneous transmitters receives none of them;
3. a transmission whose *every* intended receiver got the message
   completes the broadcast (the packet leaves the queue); otherwise the
   packet stays queued and is retransmitted later — the energy waste the
   paper's introduction highlights.

Traffic model: every sensor generates one broadcast packet every
``packet_interval`` slots (deterministic sensing reports), queued FIFO.

Execution runs on the bulk engine: the network topology is frozen once
into the dense-id adjacency of :class:`repro.engine.simindex`, the two
collision rules reduce to coverage *counts* over that adjacency (a sensor
is jammed iff >= 2 transmitters cover it; it hears something iff >= 1
does), and purely periodic protocols expose a slot table so per-slot MAC
decisions become one comparison per sensor.  Random protocols go through
:meth:`repro.net.protocols.MACProtocol.decision_block`: decisions for a
whole window of slots are drawn at once from a counter-based
:class:`repro.utils.rng.StreamRNG` keyed by ``(seed, sensor, slot)``, so
results are independent of iteration order and window boundaries.
Carrier-sensing protocols are dispatched one slot at a time (the
carrier-sense vector — a neighborhood OR over the CSR adjacency — only
exists once the previous slot resolves) but still vectorize across
sensors.  With numpy available the counts and decisions are computed by
array kernels; the pure-Python fallback runs the same integer arithmetic
and produces identical metrics.

With workers enabled (``REPRO_ENGINE_WORKERS`` or
:func:`repro.engine.parallel.set_workers`) large decision windows
additionally shard their sensor axis across worker processes inside the
randmac kernels, and the simulator widens the precomputed window to
amortize the dispatch; because every decision is keyed by
``(seed, sensor, slot)``, the resulting :class:`SimulationMetrics` are
bit-identical for any worker count.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext

from repro.engine.backend import numpy_module
from repro.engine.config import EngineConfig, default_config
from repro.engine.parallel import shard_workers
from repro.faults.injection import active_plan as _active_plan
from repro.net.energy import UNIT_TX_MODEL, EnergyModel
from repro.net.metrics import SimulationMetrics
from repro.net.model import Network
from repro.net.protocols import MACProtocol, make_protocol
from repro.utils.rng import StreamRNG
from repro.utils.validation import require_positive
from repro.utils.vectors import IntVec

__all__ = ["BroadcastSimulator", "simulate", "compare_protocols"]

#: Slots of random-MAC decisions precomputed per ``decision_block`` call
#: for protocols that do not carrier-sense.  Purely a batching knob: the
#: counter-based rng makes the results independent of the window size.
_DECISION_WINDOW = 128

#: Cap on (sensors x slots) cells per precomputed window when workers
#: widen it — bounds the decision matrix to a few tens of MB.
_MAX_DECISION_CELLS = 1 << 24


def _decision_window_for(num_sensors: int, workers: int | None = None,
                         base: int | None = None) -> int:
    """Window length for non-carrier-sense protocols.

    With sharded decisions enabled (``REPRO_ENGINE_WORKERS`` or an
    :class:`EngineConfig` worker count), wider windows amortize the
    per-window worker dispatch; the counter-based rng keeps results
    identical for every window size, so this is purely a batching
    decision.  ``workers``/``base`` override the ambient worker
    resolution and the module default window when given.
    """
    if base is None:
        base = _DECISION_WINDOW
    window = base * (shard_workers() if workers is None else workers)
    if num_sensors > 0:
        window = min(window, _MAX_DECISION_CELLS // num_sensors)
    return max(base, window)


class BroadcastSimulator:
    """Stateful slotted simulator for one network + MAC protocol pair."""

    def __init__(self, network: Network, protocol: MACProtocol,
                 packet_interval: int = 1,
                 seed: int | None = None,
                 energy_model: EnergyModel = UNIT_TX_MODEL,
                 bulk_decisions: bool | None = None,
                 config: EngineConfig | None = None):
        """``bulk_decisions=False`` forces the scalar reference path:
        random-MAC decisions fall back to one ``wants_to_send`` call per
        sensor per slot (ignoring any vectorized ``decision_block``
        override).  Both paths draw from the same per-sensor counter
        streams, so they produce identical metrics — the flag exists for
        the equivalence tests and benchmarks that prove it.  ``None``
        (the default) defers to ``config.bulk_decisions``, which
        defaults to the vectorized path.

        ``config`` pins this simulator's backend, worker count and
        decision window explicitly; with no config at all the installed
        default config is consulted, and fields left ``None`` keep the
        ambient env-var-driven behavior.  The config is re-applied
        around every :meth:`step`, so the kernels the MAC protocols
        dispatch into see it too.
        """
        require_positive(packet_interval, "packet_interval")
        if config is None:
            config = default_config()
        self._config = config
        if bulk_decisions is None:
            bulk_decisions = config.bulk_decisions
        self.network = network
        self.protocol = protocol
        self.packet_interval = packet_interval
        self.energy_model = energy_model
        self.metrics = SimulationMetrics(protocol=protocol.name,
                                         num_sensors=len(network))
        self._positions = network.positions
        self._n = len(self._positions)
        self._adjacency = network.adjacency_index()
        # FIFO of packet creation times per sensor, by dense id.
        self._queues: list[deque[int]] = [deque() for _ in range(self._n)]
        self._heard = [False] * self._n
        # Purely periodic protocols publish their decisions as a slot
        # table; errors (e.g. a schedule not covering every position)
        # surface through wants_to_send on the slow path, exactly as they
        # would without the table.
        try:
            table = getattr(protocol, "slot_table",
                            lambda positions: None)(self._positions)
        except Exception:
            table = None
        round_length = protocol.slots_per_round()
        if table is not None and round_length:
            self._slot_table: list[int] | None = list(table)
            self._round_length = round_length
            # Byzantine injection seam: an armed FaultPlan corrupts the
            # published slot table (a pure function of the plan seed and
            # the sorted sensor positions, so both backends corrupt the
            # same sensors to the same wrong slots).  Unarmed this is a
            # single None check.
            plan = _active_plan()
            if plan is not None and plan.byzantine > 0.0:
                assignment = dict(zip(self._positions, self._slot_table))
                corrupted = plan.corrupt_assignment(assignment, round_length)
                if corrupted:
                    index_of = {point: i
                                for i, point in enumerate(self._positions)}
                    for point, slot in corrupted.items():
                        self._slot_table[index_of[point]] = slot
        else:
            self._slot_table = None
            self._round_length = None
        # Random-protocol path: per-sensor counter streams + windowed
        # decision blocks.  The scalar reference mode pins dispatch to
        # the base-class wants_to_send loop, one slot at a time.
        self._stream = StreamRNG(seed)
        if bulk_decisions:
            self._decision_block = protocol.decision_block
            self._decision_window = (
                1 if protocol.uses_carrier_sense
                else _decision_window_for(self._n,
                                          workers=config.resolve_workers(),
                                          base=config.decision_window))
        else:
            self._decision_block = (
                lambda *args: MACProtocol.decision_block(protocol, *args))
            self._decision_window = 1
        self._decision_rows = None
        self._decision_t0 = 0
        # run() advances this so windows never precompute past the
        # requested horizon; step() callers keep the unbounded default.
        self._decision_horizon: int | None = None
        self._np = (numpy_module()
                    if config.resolve_backend() == "numpy" else None)
        if self._np is not None:
            np = self._np
            self._edge_senders, self._edge_receivers = \
                self._adjacency.edge_arrays()
            self._slot_array = (np.asarray(self._slot_table, dtype=np.int64)
                                if self._slot_table is not None else None)
            self._backlogged = np.zeros(self._n, dtype=bool)
        else:
            self._backlogged = [False] * self._n
        self._time = 0

    # ------------------------------------------------------------------
    @property
    def time(self) -> int:
        """Current slot number."""
        return self._time

    def pending_packets(self) -> int:
        """Packets still queued across all sensors."""
        return sum(len(q) for q in self._queues)

    def _applied(self):
        """Context applying the explicit config fields, if there are any.

        Kernels reached through the protocols (decision blocks and their
        sharded dispatch) resolve the *ambient* backend/worker state, so
        a simulator carrying an explicit config installs it around every
        step; an all-default config skips the bookkeeping entirely.
        """
        config = self._config
        if config.backend is None and config.workers is None \
                and config.on_kernel_failure is None:
            return nullcontext()
        return config.apply()

    def step(self) -> list[IntVec]:
        """Advance one slot; returns the sensors that transmitted."""
        with self._applied():
            return self._step()

    def _step(self) -> list[IntVec]:
        time = self._time
        metrics = self.metrics
        n = self._n
        np = self._np
        queues = self._queues
        # Traffic generation.
        if time % self.packet_interval == 0:
            for queue in queues:
                queue.append(time)
            metrics.packets_created += n
            if np is not None:
                self._backlogged[:] = True
            else:
                self._backlogged = [True] * n

        # MAC decisions (only backlogged sensors transmit).
        backlogged = self._backlogged
        if self._slot_table is not None:
            slot = time % self._round_length
            if np is not None:
                transmitters = np.nonzero(
                    backlogged & (self._slot_array == slot))[0].tolist()
            else:
                table = self._slot_table
                transmitters = [i for i in range(n)
                                if backlogged[i] and table[i] == slot]
        else:
            row = self._decision_row(time)
            if np is not None:
                if not isinstance(row, np.ndarray):
                    row = np.asarray(row, dtype=bool)
                transmitters = np.nonzero(backlogged & row)[0].tolist()
            else:
                transmitters = [i for i in range(n)
                                if backlogged[i] and row[i]]
        # Flaky injection seam: an armed FaultPlan silently drops
        # scheduled transmissions, keyed purely by ``(sensor, slot)`` —
        # both backends build the same ascending dense-id transmitter
        # list, so the drops replay identically.  Unarmed this is a
        # single None check per slot.
        plan = _active_plan()
        if plan is not None and plan.flaky > 0.0 and transmitters:
            transmitters = plan.filter_transmitters(transmitters, time)
        num_transmitters = len(transmitters)
        metrics.transmissions += num_transmitters
        metrics.energy_transmit += \
            self.energy_model.tx_cost * num_transmitters

        # Reception resolution per the paper's two rules: a receiver is
        # lost iff it transmits itself (rule 1) or >= 2 transmitters
        # cover it (rule 2, where "cover" counts the sender too).
        if np is not None:
            is_tx = np.zeros(n, dtype=bool)
            is_tx[transmitters] = True
            tx_edges = is_tx[self._edge_senders]
            receivers = self._edge_receivers[tx_edges]
            counts = np.bincount(receivers, minlength=n)
            failed_edges = is_tx[receivers] | (counts[receivers] > 1)
            metrics.failed_receptions += int(failed_edges.sum())
            fail_per_sender = np.bincount(
                self._edge_senders[tx_edges][failed_edges], minlength=n)
            for i in transmitters:
                if not fail_per_sender[i]:
                    self._complete_broadcast(i, time)
            self._heard = counts > 0
            total_receptions = int(counts.sum())
        else:
            receivers_of = self._adjacency.receivers
            is_tx = [False] * n
            for i in transmitters:
                is_tx[i] = True
            counts = [0] * n
            for i in transmitters:
                for receiver in receivers_of[i]:
                    counts[receiver] += 1
            for i in transmitters:
                failed = 0
                for receiver in receivers_of[i]:
                    if is_tx[receiver] or counts[receiver] > 1:
                        failed += 1
                if failed:
                    metrics.failed_receptions += failed
                else:
                    self._complete_broadcast(i, time)
            self._heard = [count > 0 for count in counts]
            total_receptions = sum(counts)

        # Non-transmit energy (counts already hold per-sensor receptions).
        model = self.energy_model
        if model.rx_cost > 0 or model.idle_cost > 0:
            metrics.energy_receive += model.rx_cost * total_receptions
            metrics.energy_idle += \
                model.idle_cost * (n - num_transmitters)

        self._time += 1
        metrics.slots = self._time
        positions = self._positions
        return [positions[i] for i in transmitters]

    def _decision_row(self, time: int):
        """This slot's MAC decisions, from the cached window if current.

        Decisions are a pure function of ``(seed, sensor, slot)`` (plus
        the carrier-sense vector, for single-slot windows), so the cache
        is transparent: any window size yields the same rows.
        """
        rows = self._decision_rows
        t0 = self._decision_t0
        if rows is None or not t0 <= time < t0 + len(rows):
            t0 = time
            t1 = t0 + self._decision_window
            if self._decision_horizon is not None:
                t1 = max(t0 + 1, min(t1, self._decision_horizon))
            rows = self._decision_block(self._positions, t0, t1,
                                        self._heard, self._stream)
            self._decision_rows = rows
            self._decision_t0 = t0
        return rows[time - t0]

    def _complete_broadcast(self, sensor: int, time: int) -> None:
        queue = self._queues[sensor]
        created = queue.popleft()
        if not queue:
            self._backlogged[sensor] = False
        metrics = self.metrics
        metrics.successful_broadcasts += 1
        metrics.packets_delivered += 1
        metrics.total_latency += time - created

    def run(self, slots: int) -> SimulationMetrics:
        """Simulate the given number of slots and return the metrics."""
        require_positive(slots, "slots")
        self._decision_horizon = self._time + slots
        try:
            with self._applied():
                for _ in range(slots):
                    self._step()
        finally:
            self._decision_horizon = None
        return self.metrics


def _resolve_protocol(network: Network, protocol: MACProtocol | str,
                      protocol_params: dict) -> MACProtocol:
    if isinstance(protocol, str):
        return make_protocol(protocol, positions=network.positions,
                             **protocol_params)
    if protocol_params:
        raise TypeError(
            f"protocol parameters {sorted(protocol_params)} are only "
            f"accepted when the protocol is named by string")
    return protocol


def simulate(network: Network, protocol: MACProtocol | str, slots: int,
             packet_interval: int = 1,
             seed: int | None = None,
             energy_model: EnergyModel = UNIT_TX_MODEL,
             config: EngineConfig | None = None,
             **protocol_params) -> SimulationMetrics:
    """One-shot convenience wrapper around :class:`BroadcastSimulator`.

    ``protocol`` may be a constructed :class:`MACProtocol` or a
    registered name (``"aloha"``, ``"csma"``, ``"tdma"``, ...), in which
    case extra keyword arguments parameterize it — e.g.
    ``simulate(network, "aloha", slots=90, p=0.2)``.  ``config`` pins the
    engine configuration for this run (backend, workers, decision
    window); omitted, the ambient env-var-driven behavior is unchanged.
    """
    simulator = BroadcastSimulator(
        network, _resolve_protocol(network, protocol, protocol_params),
        packet_interval=packet_interval,
        seed=seed, energy_model=energy_model, config=config)
    return simulator.run(slots)


def compare_protocols(network: Network,
                      protocols: list[MACProtocol | str],
                      slots: int, packet_interval: int = 1,
                      seed: int | None = None,
                      energy_model: EnergyModel = UNIT_TX_MODEL,
                      config: EngineConfig | None = None,
                      ) -> list[SimulationMetrics]:
    """Run each protocol on the same network and traffic pattern."""
    return [
        simulate(network, protocol, slots,
                 packet_interval=packet_interval, seed=seed,
                 energy_model=energy_model, config=config)
        for protocol in protocols
    ]
