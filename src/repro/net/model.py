"""Network model: sensors on lattice points with interference sets.

The paper's introduction defines the two collision problems the simulator
must reproduce:

1. if sensors ``A`` and ``B`` send at the same time and ``B`` is within
   the interference range of ``A``, hardware limitations prevent ``B``
   from receiving ``A``'s message;
2. if ``A`` and ``B`` send at the same time and a sensor ``C`` is within
   interference range of both, ``C`` receives neither message.

A :class:`Network` is a finite set of sensors, each with a position (its
lattice coordinates) and an interference set (``position + N`` under the
homogeneous model, or the D1 deployment sets of a multi-prototile tiling).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.engine.simindex import AdjacencyIndex
from repro.tiles.prototile import Prototile
from repro.tiling.multi import MultiTiling
from repro.utils.vectors import IntVec, as_intvec
from repro.utils.validation import require

__all__ = ["SensorNode", "Network"]


class SensorNode:
    """One sensor: a position and the set of points it interferes with.

    Attributes:
        position: lattice coordinates of the sensor.
        interference: the points affected by this sensor's transmissions
            (always includes the sensor's own position, since prototiles
            contain 0).
    """

    def __init__(self, position: Sequence[int],
                 interference: Iterable[Sequence[int]]):
        self.position = as_intvec(position)
        self.interference = frozenset(as_intvec(p) for p in interference)
        require(self.position in self.interference,
                "a sensor interferes with its own position by definition")

    def __repr__(self) -> str:
        return (f"SensorNode({self.position}, "
                f"range={len(self.interference)} points)")


class Network:
    """A finite sensor network with precomputed reception topology."""

    def __init__(self, nodes: Iterable[SensorNode]):
        node_list = list(nodes)
        require(len(node_list) > 0, "a network needs at least one sensor")
        positions = [node.position for node in node_list]
        require(len(set(positions)) == len(positions),
                "two sensors share a position")
        self._nodes = {node.position: node for node in node_list}
        # Sorted once; every simulator slot reads this, so it must not be
        # recomputed per access.
        self._positions: tuple[IntVec, ...] = tuple(sorted(self._nodes))
        # receivers_of[a] = sensors (other than a) inside a's range.
        self._receivers: dict[IntVec, frozenset[IntVec]] = {}
        # in_range_of[c] = senders whose range covers sensor c.
        self._in_range_of: dict[IntVec, set[IntVec]] = {
            p: set() for p in self._nodes
        }
        for node in node_list:
            receivers = frozenset(
                p for p in node.interference
                if p in self._nodes and p != node.position)
            self._receivers[node.position] = receivers
            for receiver in receivers:
                self._in_range_of[receiver].add(node.position)
        self._adjacency: AdjacencyIndex | None = None

    # ------------------------------------------------------------------
    @property
    def positions(self) -> tuple[IntVec, ...]:
        """Sensor positions in sorted order (computed once, cached)."""
        return self._positions

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, position: Sequence[int]) -> bool:
        return tuple(position) in self._nodes

    def node(self, position: Sequence[int]) -> SensorNode:
        """The sensor at a position."""
        return self._nodes[as_intvec(position)]

    def receivers_of(self, sender: Sequence[int]) -> frozenset[IntVec]:
        """Sensors inside the sender's interference range (excluding it)."""
        return self._receivers[as_intvec(sender)]

    def senders_covering(self, receiver: Sequence[int]) -> set[IntVec]:
        """Sensors whose interference range covers the given sensor."""
        return self._in_range_of[as_intvec(receiver)]

    def adjacency_index(self) -> AdjacencyIndex:
        """Reception topology over dense integer ids (built once).

        The simulator's per-slot kernels run on this index instead of
        intersecting the position-keyed sets above.
        """
        if self._adjacency is None:
            self._adjacency = AdjacencyIndex(self._positions, self._receivers)
        return self._adjacency

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def homogeneous(points: Iterable[Sequence[int]],
                    prototile: Prototile) -> Network:
        """Every sensor has the same neighborhood ``N`` (Theorem 1 model)."""
        return Network(
            SensorNode(p, prototile.translate(as_intvec(p)))
            for p in points)

    @staticmethod
    def from_multi_tiling(points: Iterable[Sequence[int]],
                          multi: MultiTiling) -> Network:
        """Deployment rule D1: neighborhood type from the covering tile."""
        return Network(
            SensorNode(p, multi.neighborhood_of(as_intvec(p)))
            for p in points)

    def __repr__(self) -> str:
        return f"Network({len(self)} sensors)"
