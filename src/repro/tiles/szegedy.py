"""Exactness for prototiles of prime cardinality or cardinality 4.

The paper cites Szegedy [FOCS'98], who "derived an algorithm to decide
whether a prototile N in a lattice L is exact assuming that the
cardinality of N is a prime or is equal to 4".  Szegedy's structural
result is that in these cases every tiling can be taken *quasi-periodic*,
and tileability reduces to the existence of a lattice (sublattice)
tiling — which our Hermite-normal-form enumeration decides exhaustively.

This module packages that reduction with the cardinality guard, so callers
get a decider whose completeness is backed by the cited theorem (instead
of the best-effort fallback in :func:`repro.tiles.exactness.is_exact`).
"""

from __future__ import annotations

from repro.lattice.sublattice import Sublattice
from repro.tiles.exactness import find_sublattice_tiling
from repro.tiles.prototile import Prototile

__all__ = ["is_prime", "szegedy_applicable", "is_exact_szegedy",
           "szegedy_witness"]


def is_prime(n: int) -> bool:
    """Deterministic primality test by trial division (inputs are tiny)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True


def szegedy_applicable(prototile: Prototile) -> bool:
    """True when Szegedy's theorem covers the prototile's cardinality."""
    return is_prime(prototile.size) or prototile.size == 4


def is_exact_szegedy(prototile: Prototile) -> bool:
    """Decide exactness for ``|N|`` prime or 4 (complete in those cases).

    Raises:
        ValueError: if the cardinality is neither prime nor 4, where the
            reduction to lattice tilings is not known to be complete.
    """
    if not szegedy_applicable(prototile):
        raise ValueError(
            f"Szegedy's decider requires |N| prime or 4, got |N| = "
            f"{prototile.size}")
    return find_sublattice_tiling(prototile) is not None


def szegedy_witness(prototile: Prototile) -> Sublattice | None:
    """The witnessing sublattice tiling, if the prototile is exact."""
    if not szegedy_applicable(prototile):
        raise ValueError(
            f"Szegedy's decider requires |N| prime or 4, got |N| = "
            f"{prototile.size}")
    return find_sublattice_tiling(prototile)
