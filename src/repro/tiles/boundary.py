"""Boundary words of polyominoes over the alphabet ``{u, d, l, r}``.

Section 3 of the paper describes polyomino exactness tests that operate on
the boundary of the tile "described by a word over the alphabet
``{u, d, l, r}``".  This module extracts that word: the counterclockwise
trace of the boundary of the union of unit squares of a connected,
hole-free prototile, starting at the bottom-left corner of the bottom-most,
left-most cell.

Word algebra: the *complement* swaps ``u <-> d`` and ``l <-> r``; the *hat*
``X^`` of the Beauquier–Nivat criterion is the reversed complement (the
same path walked backwards).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.tiles.prototile import Prototile
from repro.utils.vectors import IntVec
from repro.utils.validation import require

__all__ = [
    "LETTERS",
    "STEPS",
    "complement_letter",
    "complement_word",
    "hat",
    "word_vector",
    "word_is_closed",
    "cyclic_rotations",
    "boundary_word",
    "polyomino_from_boundary",
]

LETTERS = "udlr"

STEPS: dict[str, IntVec] = {
    "r": (1, 0),
    "u": (0, 1),
    "l": (-1, 0),
    "d": (0, -1),
}

_COMPLEMENT = {"u": "d", "d": "u", "l": "r", "r": "l"}


def complement_letter(letter: str) -> str:
    """Complement of one letter (``u <-> d``, ``l <-> r``)."""
    try:
        return _COMPLEMENT[letter]
    except KeyError:
        raise ValueError(f"invalid boundary letter {letter!r}") from None


def complement_word(word: str) -> str:
    """Letterwise complement of a word."""
    return "".join(complement_letter(ch) for ch in word)


def hat(word: str) -> str:
    """The Beauquier–Nivat hat ``X^``: reversed complement of ``X``."""
    return complement_word(word[::-1])


def word_vector(word: str) -> IntVec:
    """Total displacement of a word (sum of its unit steps)."""
    x = y = 0
    for letter in word:
        dx, dy = STEPS[letter]
        x += dx
        y += dy
    return (x, y)


def word_is_closed(word: str) -> bool:
    """True when the word returns to its starting vertex."""
    return word_vector(word) == (0, 0)


def cyclic_rotations(word: str) -> Iterator[str]:
    """All cyclic rotations of a word (boundary words are cyclic objects)."""
    for start in range(len(word)):
        yield word[start:] + word[:start]


def boundary_word(prototile: Prototile) -> str:
    """Counterclockwise boundary word of a polyomino prototile.

    The prototile must be 2-D, edge-connected and hole-free (a polyomino
    whose Voronoi-square union is a topological disk).  The trace keeps the
    interior on its left and starts along the bottom edge of the
    bottom-most then left-most cell, so the first letter is always ``r``.

    Raises:
        ValueError: if the prototile is not a polyomino, or if its boundary
            pinches (touches itself at a vertex), in which case the plane
            tile is not homeomorphic to a disk.
    """
    require(prototile.dimension == 2, "boundary words are 2-D objects")
    require(prototile.is_connected(), "prototile must be edge-connected")
    require(not prototile.has_holes(), "prototile must not have holes")
    cells = prototile.cells

    # Directed boundary edges with the interior on the left.
    outgoing: dict[IntVec, list[tuple[IntVec, str]]] = {}

    def add_edge(start: IntVec, end: IntVec, letter: str) -> None:
        outgoing.setdefault(start, []).append((end, letter))

    total_edges = 0
    for (x, y) in cells:
        if (x, y - 1) not in cells:
            add_edge((x, y), (x + 1, y), "r")
            total_edges += 1
        if (x + 1, y) not in cells:
            add_edge((x + 1, y), (x + 1, y + 1), "u")
            total_edges += 1
        if (x, y + 1) not in cells:
            add_edge((x + 1, y + 1), (x, y + 1), "l")
            total_edges += 1
        if (x - 1, y) not in cells:
            add_edge((x, y + 1), (x, y), "d")
            total_edges += 1

    start_cell = min(cells, key=lambda c: (c[1], c[0]))
    start_vertex: IntVec = (start_cell[0], start_cell[1])
    word_letters: list[str] = []
    vertex = start_vertex
    used = 0
    while True:
        edges = outgoing.get(vertex, [])
        if len(edges) != 1:
            raise ValueError(
                "boundary pinches at a vertex; the tile is not homeomorphic "
                "to a disk (not a polyomino in the paper's sense)")
        end, letter = edges[0]
        word_letters.append(letter)
        used += 1
        del outgoing[vertex]
        vertex = end
        if vertex == start_vertex:
            break
    if used != total_edges:
        raise ValueError("boundary is not a single closed curve")
    return "".join(word_letters)


def polyomino_from_boundary(word: str, name: str = "from-boundary") -> Prototile:
    """Reconstruct the polyomino enclosed by a counterclockwise boundary word.

    The inverse of :func:`boundary_word` up to translation: the enclosed
    unit cells are recovered by a scanline parity fill, then translated so
    the cell set contains the origin (rebased at its bottom-left-most
    cell).

    Raises:
        ValueError: if the word is not closed or encloses no cells.
    """
    require(word_is_closed(word), "boundary word must be closed")
    # Collect vertical edges with orientation for parity counting.
    vertical_edges: dict[tuple[int, int], int] = {}
    x = y = 0
    for letter in word:
        dx, dy = STEPS[letter]
        if letter == "u":
            vertical_edges[(x, y)] = vertical_edges.get((x, y), 0) + 1
        elif letter == "d":
            vertical_edges[(x, y - 1)] = vertical_edges.get((x, y - 1), 0) + 1
        x += dx
        y += dy
    if not vertical_edges:
        raise ValueError("boundary word encloses no cells")
    xs = [pos[0] for pos in vertical_edges]
    ys = [pos[1] for pos in vertical_edges]
    cells: list[IntVec] = []
    for row in range(min(ys), max(ys) + 1):
        crossings = sorted(px for (px, py), count in vertical_edges.items()
                           if py == row for _ in range(count))
        # Pair up crossings: between the (2k)-th and (2k+1)-th lies interior.
        for i in range(0, len(crossings) - 1, 2):
            for col in range(crossings[i], crossings[i + 1]):
                cells.append((col, row))
    require(len(cells) > 0, "boundary word encloses no cells")
    anchor = min(cells, key=lambda c: (c[1], c[0]))
    shifted = [(cx - anchor[0], cy - anchor[1]) for cx, cy in cells]
    return Prototile(shifted, name=name)
