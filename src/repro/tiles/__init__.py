"""Prototiles (sensor neighborhoods), boundary words, exactness deciders."""

from repro.tiles.bn import (
    BNFactorization,
    find_bn_factorization,
    find_bn_factorization_naive,
    is_exact_polyomino,
)
from repro.tiles.boundary import (
    boundary_word,
    complement_word,
    hat,
    polyomino_from_boundary,
    word_vector,
)
from repro.tiles.exactness import (
    all_sublattice_tilings,
    find_sublattice_tiling,
    is_exact,
    is_exact_lattice,
    tiles_by_sublattice,
)
from repro.tiles.prototile import Prototile
from repro.tiles.shapes import (
    GALLERY,
    TETROMINOES,
    chebyshev_ball,
    directional_antenna,
    euclidean_ball,
    l_tetromino,
    line_tile,
    plus_pentomino,
    rectangle_tile,
    s_tetromino,
    square_tetromino,
    t_tetromino,
    z_tetromino,
)
from repro.tiles.szegedy import is_exact_szegedy, szegedy_applicable

__all__ = [
    "BNFactorization",
    "GALLERY",
    "Prototile",
    "TETROMINOES",
    "all_sublattice_tilings",
    "boundary_word",
    "chebyshev_ball",
    "complement_word",
    "directional_antenna",
    "euclidean_ball",
    "find_bn_factorization",
    "find_bn_factorization_naive",
    "find_sublattice_tiling",
    "hat",
    "is_exact",
    "is_exact_lattice",
    "is_exact_polyomino",
    "is_exact_szegedy",
    "l_tetromino",
    "line_tile",
    "plus_pentomino",
    "polyomino_from_boundary",
    "rectangle_tile",
    "s_tetromino",
    "square_tetromino",
    "szegedy_applicable",
    "t_tetromino",
    "tiles_by_sublattice",
    "word_vector",
    "z_tetromino",
]
