"""Deciding exactness: when does a prototile admit a tiling? (Section 3.)

The paper's question Q1 asks when a prototile ``N`` is *exact*, i.e. when
some translate set ``T`` satisfies the tiling conditions T1 and T2.  This
module implements the decision procedures:

* **Sublattice search** (:func:`find_sublattice_tiling`): enumerate all
  sublattices of ``Z^d`` of index ``|N|`` and test whether the elements of
  ``N`` represent every coset exactly once.  Complete for *lattice*
  tilings in any dimension; by Beauquier–Nivat, for polyominoes a lattice
  tiling exists iff any tiling exists, so the search is a full exactness
  decider for polyominoes (and, by Szegedy's theorem, for prototiles of
  prime cardinality or cardinality 4 — see :mod:`repro.tiles.szegedy`).

* **Boundary-word criterion** (via :mod:`repro.tiles.bn`): polynomial in
  the boundary length for polyominoes, and constructive.

The torus backtracking search for general periodic (non-lattice) tilings
lives in :mod:`repro.tiling.search`, layered above this module.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lattice.sublattice import Sublattice, all_sublattices_of_index
from repro.tiles.bn import find_bn_factorization
from repro.tiles.boundary import boundary_word
from repro.tiles.prototile import Prototile

__all__ = [
    "tiles_by_sublattice",
    "find_sublattice_tiling",
    "all_sublattice_tilings",
    "is_exact_lattice",
    "is_exact",
]


def tiles_by_sublattice(prototile: Prototile, sublattice: Sublattice) -> bool:
    """Check whether ``prototile + sublattice`` tiles ``Z^d``.

    Conditions T1 and T2 hold together iff the sublattice has index
    ``|N|`` and the cells of ``N`` fall into pairwise distinct cosets —
    then ``N`` is a complete set of coset representatives, so every lattice
    point is covered exactly once.
    """
    if sublattice.index != prototile.size:
        return False
    representatives = {
        sublattice.canonical_representative(cell) for cell in prototile.cells
    }
    return len(representatives) == prototile.size


def find_sublattice_tiling(prototile: Prototile) -> Sublattice | None:
    """Find some sublattice ``T`` with ``N + T = Z^d`` a tiling, or ``None``.

    Enumerates every sublattice of index ``|N|`` (there are finitely many;
    ``sigma(|N|)`` in two dimensions).
    """
    for sublattice in all_sublattices_of_index(prototile.dimension,
                                               prototile.size):
        if tiles_by_sublattice(prototile, sublattice):
            return sublattice
    return None


def all_sublattice_tilings(prototile: Prototile) -> Iterator[Sublattice]:
    """Iterate *every* sublattice that tiles with the prototile.

    Useful for studying how many essentially different lattice tilings a
    neighborhood admits (the paper's Theorem 1 holds for each of them).
    """
    for sublattice in all_sublattices_of_index(prototile.dimension,
                                               prototile.size):
        if tiles_by_sublattice(prototile, sublattice):
            yield sublattice


def is_exact_lattice(prototile: Prototile) -> bool:
    """True when the prototile admits a *lattice* tiling."""
    return find_sublattice_tiling(prototile) is not None


def is_exact(prototile: Prototile) -> bool:
    """Decide exactness of a prototile (question Q1).

    Strategy:

    1. If a sublattice tiling exists, the prototile is exact.
    2. Otherwise, if the prototile is a polyomino, Beauquier–Nivat is a
       complete decider: no pseudo-hexagon factorization means no tiling
       of any kind.

    For disconnected prototiles with no lattice tiling the function
    returns ``False`` with the caveat that exotic non-lattice tilings are
    not searched here; use :func:`repro.tiling.search.find_periodic_tiling`
    to hunt for those explicitly.
    """
    if is_exact_lattice(prototile):
        return True
    if prototile.is_polyomino():
        return find_bn_factorization(boundary_word(prototile)) is not None
    return False
