"""Prototiles (neighborhoods): finite subsets of the lattice containing 0.

The paper calls a finite subset ``N`` of the lattice a *prototile* or a
*neighborhood* of the point 0 iff it contains 0 itself; ``N`` describes the
set of sensors affected by the wireless communication of the sensor at 0
(and, translated, of every other sensor).  Its shape is determined by the
antenna and the signal strength.

The class below is the library's central immutable value type.  Key derived
objects:

* the *difference set* ``N - N``: sensors at ``s`` and ``t`` have
  intersecting interference ranges iff ``t - s`` belongs to it — the
  collision kernel used by schedule verification;
* the *Minkowski sum* ``N + N``: the conclusions' finite-restriction
  criterion asks for a translate of it inside the finite domain.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.utils.vectors import (
    IntVec,
    as_intvec,
    bounding_box,
    difference_set,
    minkowski_sum,
    reflect_x,
    rotate90,
    vadd,
    vneg,
    vsub,
)
from repro.utils.validation import require

__all__ = ["Prototile"]


class Prototile:
    """An immutable prototile: a finite set of integer points containing 0.

    Args:
        cells: the points of the prototile.  Must contain the origin and be
            non-empty; all points must share one dimension.
        name: optional label used in reports and figures.
    """

    def __init__(self, cells: Iterable[Sequence[int]], name: str = "prototile"):
        points = frozenset(as_intvec(c) for c in cells)
        require(len(points) > 0, "a prototile must contain at least one cell")
        dimension = len(next(iter(points)))
        for point in points:
            require(len(point) == dimension,
                    "prototile cells have mixed dimensions")
        origin = (0,) * dimension
        require(origin in points,
                "a prototile must contain the origin (paper, Section 2)")
        self._cells = points
        self.dimension = dimension
        self.name = name

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def cells(self) -> frozenset[IntVec]:
        """The cells of the prototile as a frozen set."""
        return self._cells

    @property
    def size(self) -> int:
        """Number of cells ``|N|`` — the slot count of the optimal schedule."""
        return len(self._cells)

    def sorted_cells(self) -> list[IntVec]:
        """Cells in lexicographic order (the canonical slot enumeration)."""
        return sorted(self._cells)

    def __iter__(self) -> Iterator[IntVec]:
        return iter(self.sorted_cells())

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, point: Sequence[int]) -> bool:
        return tuple(point) in self._cells

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prototile):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        return hash(self._cells)

    def __repr__(self) -> str:
        return f"Prototile({self.name!r}, size={self.size})"

    # ------------------------------------------------------------------
    # Set-theoretic structure
    # ------------------------------------------------------------------
    def translate(self, offset: Sequence[int]) -> frozenset[IntVec]:
        """The translated point set ``offset + N`` (a plain set).

        The result usually does not contain the origin, hence is not
        returned as a ``Prototile``.
        """
        offset = as_intvec(offset)
        return frozenset(vadd(cell, offset) for cell in self._cells)

    def rebased_at(self, cell: Sequence[int]) -> Prototile:
        """The prototile translated so that ``cell`` becomes the origin.

        ``cell`` must belong to the prototile; the result contains 0.
        """
        cell = as_intvec(cell)
        require(cell in self._cells, f"{cell} is not a cell of the prototile")
        return Prototile((vsub(c, cell) for c in self._cells),
                         name=f"{self.name}@{cell}")

    def difference_set(self) -> frozenset[IntVec]:
        """The collision kernel ``N - N``."""
        return difference_set(self.sorted_cells())

    def minkowski_with(self, other: Prototile) -> frozenset[IntVec]:
        """Minkowski sum ``N + M``."""
        require(self.dimension == other.dimension,
                "cannot sum prototiles of different dimensions")
        return minkowski_sum(self._cells, other.sorted_cells())

    def self_sum(self) -> frozenset[IntVec]:
        """``N + N``, the conclusions' finite-restriction pattern."""
        return self.minkowski_with(self)

    def contains_prototile(self, other: Prototile) -> bool:
        """True when ``other``'s cells are a subset of this prototile's.

        The *respectable* condition of Theorem 2 requires ``N1`` to contain
        every other prototile.
        """
        return other._cells <= self._cells

    # ------------------------------------------------------------------
    # Rigid motions (2-D)
    # ------------------------------------------------------------------
    def rotated90(self, times: int = 1) -> Prototile:
        """The prototile rotated by ``times * 90`` degrees counterclockwise.

        Rotation fixes the origin, so the result is again a prototile.
        Only defined in two dimensions.
        """
        require(self.dimension == 2, "rotations are implemented for 2-D tiles")
        cells = self._cells
        for _ in range(times % 4):
            cells = frozenset(rotate90(c) for c in cells)
        return Prototile(cells, name=f"{self.name}-rot{(times % 4) * 90}")

    def reflected(self) -> Prototile:
        """The prototile reflected across the x-axis (2-D only)."""
        require(self.dimension == 2, "reflections are implemented for 2-D tiles")
        return Prototile((reflect_x(c) for c in self._cells),
                         name=f"{self.name}-mirror")

    def negated(self) -> Prototile:
        """The point reflection ``-N`` (valid in any dimension)."""
        return Prototile((vneg(c) for c in self._cells), name=f"-{self.name}")

    def all_rotations(self) -> list[Prototile]:
        """The four rotations of a 2-D prototile (deduplicated)."""
        seen: dict[frozenset[IntVec], Prototile] = {}
        for times in range(4):
            rotated = self.rotated90(times)
            seen.setdefault(rotated.cells, rotated)
        return list(seen.values())

    # ------------------------------------------------------------------
    # Topology (used by the boundary-word machinery)
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Edge-connectivity of the cells (4-connectivity in 2-D).

        Connected, hole-free 2-D prototiles are *polyominoes* in the
        paper's sense (their Voronoi-square unions are topological disks).
        """
        cells = self._cells
        start = next(iter(cells))
        seen = {start}
        frontier = [start]
        neighbors = _axis_neighbors(self.dimension)
        while frontier:
            current = frontier.pop()
            for offset in neighbors:
                candidate = vadd(current, offset)
                if candidate in cells and candidate not in seen:
                    seen.add(candidate)
                    frontier.append(candidate)
        return len(seen) == len(cells)

    def has_holes(self) -> bool:
        """True when the complement has a bounded component (2-D).

        Flood-fills the complement of the cells inside the bounding box
        inflated by one; complement cells unreachable from the outside are
        holes.
        """
        require(self.dimension == 2, "hole detection is implemented for 2-D")
        lo, hi = bounding_box(self._cells)
        lo = (lo[0] - 1, lo[1] - 1)
        hi = (hi[0] + 1, hi[1] + 1)
        outside_seen: set[IntVec] = set()
        frontier = [lo]
        outside_seen.add(lo)
        neighbors = _axis_neighbors(2)
        while frontier:
            current = frontier.pop()
            for offset in neighbors:
                candidate = vadd(current, offset)
                if (lo[0] <= candidate[0] <= hi[0]
                        and lo[1] <= candidate[1] <= hi[1]
                        and candidate not in self._cells
                        and candidate not in outside_seen):
                    outside_seen.add(candidate)
                    frontier.append(candidate)
        total_box = (hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1)
        return len(outside_seen) + len(self._cells) != total_box

    def is_polyomino(self) -> bool:
        """Connected and hole-free — eligible for the boundary-word tests."""
        return self.dimension == 2 and self.is_connected() and not self.has_holes()

    # ------------------------------------------------------------------
    def bounding_box(self) -> tuple[IntVec, IntVec]:
        """Tight axis-aligned bounding box of the cells."""
        return bounding_box(self._cells)

    def diameter_bound(self) -> int:
        """Chebyshev diameter bound: interactions vanish beyond this range."""
        lo, hi = self.bounding_box()
        return max(h - l for l, h in zip(lo, hi))


def _axis_neighbors(dimension: int) -> list[IntVec]:
    offsets = []
    for axis in range(dimension):
        for sign in (1, -1):
            offsets.append(tuple(sign if i == axis else 0
                                 for i in range(dimension)))
    return offsets
