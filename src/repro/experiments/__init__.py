"""Reproduction experiments: one per paper figure, theorem and claim."""

from repro.experiments.base import ExperimentResult, format_rows
from repro.experiments.registry import EXPERIMENTS, run_all, run_experiment

__all__ = ["EXPERIMENTS", "ExperimentResult", "format_rows", "run_all",
           "run_experiment"]
