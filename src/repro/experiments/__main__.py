"""CLI: ``python -m repro.experiments [id ... | all] [--figures DIR]``.

Runs the requested reproduction experiments and prints their reports;
with ``--figures`` also regenerates the paper's five figures as SVG.
Exits nonzero if any experiment fails its paper expectation.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures, theorems and claims.")
    parser.add_argument(
        "experiments", nargs="*", default=["all"],
        help=f"experiment ids ({', '.join(EXPERIMENTS)}) or 'all'")
    parser.add_argument(
        "--figures", metavar="DIR", default=None,
        help="also write the five figures as SVG files into DIR")
    args = parser.parse_args(argv)

    requested = list(args.experiments)
    if not requested or "all" in requested:
        requested = list(EXPERIMENTS)

    failures = 0
    for experiment_id in requested:
        result = run_experiment(experiment_id)
        print(result.render())
        print()
        if not result.passed:
            failures += 1

    if args.figures:
        from repro.viz.figures import all_figures
        for artifact in all_figures():
            paths = artifact.save_svgs(args.figures)
            print(f"wrote {artifact.figure_id}: {', '.join(paths)}")

    if failures:
        print(f"{failures} experiment(s) FAILED", file=sys.stderr)
        return 1
    print(f"all {len(requested)} experiment(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
