"""Systems experiments: collisions/energy, scaling, mobility, exactness.

These regenerate the quantitative story of the paper's introduction and
related-work discussion:

* ``collisions`` — the tiling schedule versus probabilistic MACs and
  global TDMA on the simulator (collisions, delivery, energy / packet);
* ``randmac`` — a seeded sweep of the random MACs over transmit
  probabilities, averaged across independent trials on the vectorized
  decision path (the ALOHA/CSMA counterpart of the scaling story);
* ``scaling`` — round length and per-sensor scheduling cost as the
  network grows (the "TDMA does not scale" argument, and the O(1)
  slot-lookup of the lattice schedule versus coloring baselines);
* ``mobile`` — Section 5's location-slot rule on a random-waypoint fleet;
* ``exactness`` — the Section 3 deciders agree and their runtimes scale
  with boundary length as expected.
"""

from __future__ import annotations

import time

from repro.api import Box, Session
from repro.experiments.base import ExperimentResult
from repro.graphs.coloring import dsatur_coloring, greedy_coloring
from repro.graphs.interference import conflict_graph_homogeneous
from repro.lattice.region import box_region
from repro.lattice.standard import square_lattice
from repro.net.metrics import SimulationMetrics
from repro.net.mobility import (
    MobileAlohaMAC,
    MobileSimulator,
    MobileTilingMAC,
    RandomWaypoint,
)
from repro.core.mobile import MobileScheduler
from repro.tiles.bn import (
    find_bn_factorization,
    find_bn_factorization_naive,
)
from repro.tiles.boundary import boundary_word
from repro.tiles.exactness import find_sublattice_tiling
from repro.tiles.shapes import chebyshev_ball, rectangle_tile

__all__ = ["run_collisions", "run_randmac", "run_scaling", "run_mobile",
           "run_exactness"]


def run_collisions(slots: int = 270, seed: int = 7) -> ExperimentResult:
    """Protocol comparison on a 10x10 grid with the 3x3 neighborhood."""
    session = Session.for_chebyshev(1, window=Box((0, 0), (9, 9)))
    results = [
        session.simulate(protocol, slots, seed=seed, p=0.1)
        if protocol in ("aloha", "csma")
        else session.simulate(protocol, slots, seed=seed)
        for protocol in ("schedule", "tdma", "aloha", "csma")
    ]
    rows = [m.as_row() for m in results]
    tiling, tdma, aloha, csma = results
    passed = (
        tiling.failed_receptions == 0
        and tiling.delivery_ratio > 0.95
        and tdma.failed_receptions == 0
        and tdma.mean_latency > tiling.mean_latency
        and aloha.failed_receptions > 0
        and aloha.energy_per_delivered > tiling.energy_per_delivered
        and csma.failed_receptions > 0
    )
    return ExperimentResult(
        "collisions", "Collision/energy comparison (introduction's motivation)",
        "tiling schedule: zero collisions, delivery ~1, energy 1/packet; "
        "random access wastes energy on resends; TDMA is collision-free "
        "but slow",
        rows, passed,
        notes=f"{len(session.window)} sensors, {slots} slots, traffic "
              f"every {session.num_slots} slots")


def run_randmac(p_values: tuple[float, ...] = (0.05, 0.15, 0.3),
                trials: int = 6, slots: int = 120,
                seed: int = 2008) -> ExperimentResult:
    """Random-MAC sweep: collisions/delivery versus transmit probability.

    Each (protocol, p) cell averages ``trials`` independently seeded runs
    on an 8x8 grid.  The per-sensor counter streams make every run
    reproducible from its seed alone, and the vectorized decision path
    keeps the whole sweep cheap enough to live in the tier-1 suite.
    """
    session = Session.for_chebyshev(1, window=Box((0, 0), (7, 7)))
    points = session.window
    rows = []
    mean_collisions: dict[tuple[str, float], float] = {}
    for label in ("aloha", "csma"):
        for p in p_values:
            runs = [session.simulate(label, slots, packet_interval=8,
                                     seed=seed + trial, p=p)
                    for trial in range(trials)]
            collisions = sum(m.failed_receptions for m in runs) / trials
            mean_collisions[label, p] = collisions
            rows.append({
                "protocol": label,
                "p": p,
                "collisions/run": round(collisions, 1),
                "delivery": round(
                    sum(m.delivery_ratio for m in runs) / trials, 4),
                "energy/delivered": round(
                    sum(min(m.energy_per_delivered, 1e9)
                        for m in runs) / trials, 2),
            })
    lowest, highest = min(p_values), max(p_values)
    passed = (
        all(c > 0 for c in mean_collisions.values())
        and mean_collisions["aloha", lowest] <
        mean_collisions["aloha", highest]
        and all(mean_collisions["csma", p] < mean_collisions["aloha", p]
                for p in p_values)
    )
    return ExperimentResult(
        "randmac", "Random MACs at scale (engine decision path)",
        "collisions grow with transmit probability; carrier sense "
        "reduces but never eliminates them — unlike the tiling schedule",
        rows, passed,
        notes=f"{len(points)} sensors, {trials} trials x {slots} slots "
              f"per cell, seeds {seed}..{seed + trials - 1}")


def run_scaling(sides: tuple[int, ...] = (4, 6, 8, 10, 14),
                seed: int = 3) -> ExperimentResult:
    """Round length and scheduling cost versus network size."""
    tile = chebyshev_ball(1)
    session = Session.for_prototile(tile)
    rows = []
    for side in sides:
        region = box_region((0, 0), (side - 1, side - 1))
        points = list(region.points)
        start = time.perf_counter()
        for point in points:
            session.schedule.slot_of(point)
        tiling_time = time.perf_counter() - start
        graph = conflict_graph_homogeneous(points, tile)
        start = time.perf_counter()
        dsatur = dsatur_coloring(graph)
        dsatur_time = time.perf_counter() - start
        greedy = greedy_coloring(graph)
        rows.append({
            "sensors": len(points),
            "tiling slots": session.num_slots,
            "tdma slots": len(points),
            "dsatur slots": max(dsatur.values()) + 1,
            "greedy slots": max(greedy.values()) + 1,
            "tiling us/sensor": round(1e6 * tiling_time / len(points), 2),
            "dsatur us/sensor": round(1e6 * dsatur_time / len(points), 2),
        })
    constant_round = len({row["tiling slots"] for row in rows}) == 1
    tdma_grows = all(rows[i]["tdma slots"] < rows[i + 1]["tdma slots"]
                     for i in range(len(rows) - 1))
    never_worse = all(row["tiling slots"] <= row["dsatur slots"]
                      and row["tiling slots"] <= row["greedy slots"]
                      for row in rows)
    passed = constant_round and tdma_grows and never_worse
    return ExperimentResult(
        "scaling", "Scalability (contribution 2)",
        "tiling round stays |N| = 9 while TDMA's grows with the network; "
        "tiling slot lookup is O(1) per sensor",
        rows, passed, notes=f"seed={seed}")


def run_mobile(slots: int = 270, count: int = 30,
               seed: int = 11) -> ExperimentResult:
    """Section 5's mobile rule versus mobile ALOHA."""
    lattice = square_lattice()
    schedule = Session.for_chebyshev(1).schedule
    scheduler = MobileScheduler(lattice, schedule)
    results: list[SimulationMetrics] = []
    for mac in (MobileTilingMAC(scheduler), MobileAlohaMAC(0.15)):
        fleet = RandomWaypoint((-8.0, -8.0, 8.0, 8.0), speed=0.3,
                               count=count, seed=seed)
        simulator = MobileSimulator(fleet, mac, radius=0.45,
                                    packet_interval=schedule.num_slots,
                                    seed=seed + 1)
        results.append(simulator.run(slots))
    rows = [m.as_row() for m in results]
    tiling, aloha = results
    passed = (tiling.failed_receptions == 0
              and aloha.failed_receptions > 0
              and tiling.energy_per_delivered <= 1.0 + 1e-9)
    return ExperimentResult(
        "mobile", "Mobile sensors (Conclusions / Section 5)",
        "location-owned slots with the fits-in-tile rule are collision-"
        "free for moving sensors; probabilistic sending collides",
        rows, passed,
        notes="delivery under the tiling rule trades against the "
              "conservative fits-in-tile test; collisions stay zero")


def run_exactness(max_width: int = 7) -> ExperimentResult:
    """Section 3 deciders: agreement and runtime growth."""
    rows = []
    agree = True
    for width in range(2, max_width + 1):
        tile = rectangle_tile(width, 2)
        word = boundary_word(tile)
        start = time.perf_counter()
        naive = find_bn_factorization_naive(word)
        naive_time = time.perf_counter() - start
        start = time.perf_counter()
        fast = find_bn_factorization(word)
        fast_time = time.perf_counter() - start
        start = time.perf_counter()
        sublattice = find_sublattice_tiling(tile)
        sublattice_time = time.perf_counter() - start
        agree &= (naive is None) == (fast is None) == (sublattice is None)
        rows.append({
            "prototile": tile.name,
            "boundary n": len(word),
            "naive ms": round(1e3 * naive_time, 3),
            "fast ms": round(1e3 * fast_time, 3),
            "sublattice ms": round(1e3 * sublattice_time, 3),
            "exact": fast is not None,
        })
    passed = agree and all(row["exact"] for row in rows)
    return ExperimentResult(
        "exactness", "Deciding exactness (Section 3)",
        "Beauquier-Nivat criterion decides polyomino exactness in time "
        "polynomial in the boundary length; deciders agree",
        rows, passed)
