"""Experiments heuristics/dimensions: related work and generality claims.

* ``heuristics`` — the related-work landscape on finite instances: plain
  TDMA, greedy, DSATUR, Wang–Ansari mean-field annealing, Shi–Wang
  Hopfield network, exact branch-and-bound, and the tiling schedule.  On
  lattice patches the tiling schedule matches the exact optimum while
  costing O(1) per sensor; the heuristics approach it from above.
* ``dimensions`` — "We formulate our results for arbitrary lattices in
  arbitrary dimensions": Theorem 1 run end to end on ``Z^d`` for
  ``d = 1, 2, 3`` with Chebyshev balls, with collision-freeness verified
  in every dimension.
"""

from __future__ import annotations

from repro.api import Session
from repro.experiments.base import ExperimentResult
from repro.graphs.anneal import anneal_minimum_slots
from repro.graphs.coloring import (
    dsatur_coloring,
    exact_chromatic_number,
    greedy_coloring,
)
from repro.graphs.hopfield import hopfield_minimum_slots
from repro.graphs.interference import conflict_graph_homogeneous
from repro.lattice.region import box_region
from repro.tiles.shapes import chebyshev_ball, plus_pentomino
from repro.utils.vectors import box_points

__all__ = ["run_heuristics", "run_dimensions"]


def run_heuristics(side: int = 6, seed: int = 5) -> ExperimentResult:
    """Scheduler shoot-out on a lattice patch (related-work landscape)."""
    rows = []
    for tile in (plus_pentomino(), chebyshev_ball(1)):
        region = box_region((0, 0), (side - 1, side - 1))
        points = list(region.points)
        graph = conflict_graph_homogeneous(points, tile)
        exact, _ = exact_chromatic_number(graph)
        greedy = max(greedy_coloring(graph).values()) + 1
        dsatur = max(dsatur_coloring(graph).values()) + 1
        mfa, _ = anneal_minimum_slots(graph, seed=seed)
        hopfield, _ = hopfield_minimum_slots(graph, seed=seed)
        schedule = Session.for_prototile(tile).schedule
        rows.append({
            "prototile": tile.name,
            "sensors": len(points),
            "tdma": len(points),
            "greedy": greedy,
            "dsatur": dsatur,
            "mean-field": mfa,
            "hopfield": hopfield,
            "exact": exact,
            "tiling": schedule.num_slots,
        })
    passed = all(
        row["tiling"] == row["exact"]
        and row["exact"] <= row["dsatur"] <= row["greedy"] <= row["tdma"]
        and row["exact"] <= row["mean-field"]
        and row["exact"] <= row["hopfield"]
        for row in rows)
    return ExperimentResult(
        "heuristics", "Related-work scheduler comparison",
        "NP-hard in general (McCormick; Lloyd-Ramanathan); heuristics "
        "(annealing, neural nets) upper-bound the optimum, while the "
        "tiling schedule attains it directly on lattices",
        rows, passed, notes=f"{side}x{side} patch, seed={seed}")


def run_dimensions(max_dimension: int = 3) -> ExperimentResult:
    """Theorem 1 in d = 1..max_dimension (arbitrary-dimension claim)."""
    rows = []
    all_ok = True
    for dimension in range(1, max_dimension + 1):
        tile = chebyshev_ball(1, dimension=dimension)
        radius = 4 if dimension < 3 else 2
        lo = (-radius,) * dimension
        hi = (radius,) * dimension
        window = list(box_points(lo, hi))
        session = Session.for_prototile(tile, window=window)
        collision_free = session.verify().collision_free
        expected = 3 ** dimension
        all_ok &= collision_free and session.num_slots == expected
        rows.append({
            "dimension": dimension,
            "|N|": tile.size,
            "slots": session.num_slots,
            "expected": expected,
            "window sensors": len(window),
            "collision-free": collision_free,
        })
    return ExperimentResult(
        "dimensions", "Arbitrary dimensions (Section 1)",
        "the tiling construction works verbatim on Z^d for any d; "
        "Chebyshev ball of radius 1 needs 3^d slots",
        rows, all_ok)
