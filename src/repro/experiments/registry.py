"""Experiment registry: id -> runner, in paper order."""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments.base import ExperimentResult
from repro.experiments.fig_experiments import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
)
from repro.experiments.related_work_experiments import (
    run_dimensions,
    run_heuristics,
)
from repro.experiments.scenario_experiments import run_scenarios
from repro.experiments.systems_experiments import (
    run_collisions,
    run_exactness,
    run_mobile,
    run_randmac,
    run_scaling,
)
from repro.experiments.theorem_experiments import (
    run_finite,
    run_thm1,
    run_thm2,
)

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "thm1": run_thm1,
    "thm2": run_thm2,
    "finite": run_finite,
    "collisions": run_collisions,
    "randmac": run_randmac,
    "scaling": run_scaling,
    "mobile": run_mobile,
    "exactness": run_exactness,
    "heuristics": run_heuristics,
    "dimensions": run_dimensions,
    "scenarios": run_scenarios,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id.

    Raises:
        KeyError: for unknown ids (the CLI lists the registry).
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None
    return runner()


def run_all() -> list[ExperimentResult]:
    """Run every experiment in paper order."""
    return [runner() for runner in EXPERIMENTS.values()]
