"""Scenario experiment: the differential oracle as a reproduction check.

One pinned-seed spec per generator family, replayed across the full
engine matrix — ``{numpy, python} x {1, 2 workers} x {full, incremental}
x {facade, legacy}`` — with zero tolerated divergences or invariant
violations.  This is the registry-facing face of
:mod:`repro.scenarios`; the deep corpus lives in the integration suite
and the ``scenario-stress`` CI tier.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.scenarios.generators import family_names, generate
from repro.scenarios.oracle import full_matrix, run_oracle

__all__ = ["run_scenarios"]


def run_scenarios(seed: int = 2008, per_family: int = 2) -> ExperimentResult:
    """Oracle sweep: ``per_family`` specs per family at a pinned seed."""
    matrix = full_matrix()
    rows = []
    failures = []
    for family in family_names():
        for index in range(per_family):
            spec = generate(family, seed, index)
            report = run_oracle(spec, paths=matrix)
            rows.append({
                "family": family,
                "index": index,
                "window": len(spec.window_points()),
                "paths": len(report.paths),
                "violations": len(report.violations),
            })
            if not report.ok:
                failures.append(spec.cli_command())
    notes = (f"seed={seed}; reproduce failures via: "
             + "; ".join(failures) if failures
             else f"seed={seed}; every path bit-identical")
    return ExperimentResult(
        "scenarios", "Differential scenario oracle (engine cross-check)",
        "every engine path — backend x workers x full/incremental x "
        "facade/legacy — answers each generated scenario identically, "
        "and the answers satisfy Theorems 1/2",
        rows, passed=not failures, notes=notes)
