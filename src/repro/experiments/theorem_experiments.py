"""Experiments thm1/thm2/finite: the theorems and the conclusions' claim.

* ``thm1`` — for a gallery of exact prototiles: the tiling schedule is
  collision-free on a large window, uses exactly ``|N|`` slots, and the
  exact chromatic number of a core patch equals ``|N|``.
* ``thm2`` — respectable multi-prototile tilings: the Theorem 2 schedule
  is collision-free with ``m = |N_1|`` slots, certified optimal.
* ``finite`` — restriction to finite regions: optimality persists exactly
  when the region contains a translate of ``N + N``.
"""

from __future__ import annotations

from repro.api import Box, Session
from repro.core.optimality import minimum_slots, minimum_slots_region
from repro.core.restriction import restriction_report
from repro.core.theorem2 import respectable_optimal_slots
from repro.experiments.base import ExperimentResult
from repro.lattice.region import box_region
from repro.lattice.sublattice import diagonal_sublattice
from repro.tiles.shapes import (
    chebyshev_ball,
    directional_antenna,
    plus_pentomino,
    rectangle_tile,
    s_tetromino,
    t_tetromino,
)
from repro.tiling.multi import MultiTiling
from repro.utils.vectors import box_points

__all__ = ["run_thm1", "run_thm2", "run_finite", "respectable_pair_tiling"]


def run_thm1() -> ExperimentResult:
    """Theorem 1 across a prototile gallery, with exact-coloring oracle."""
    gallery = [
        chebyshev_ball(1),
        plus_pentomino(),
        directional_antenna(),
        s_tetromino(),
        t_tetromino(),
        rectangle_tile(2, 3),
    ]
    rows = []
    window = list(box_points((-7, -7), (7, 7)))
    for tile in gallery:
        session = Session.for_prototile(tile, window=window)
        collision_free = session.verify().collision_free
        # Exact optimum on a core patch large enough to contain N + N.
        lo, hi = tile.bounding_box()
        span = max(hi[i] - lo[i] for i in range(2)) + 1
        patch = box_region((0, 0), (2 * span, 2 * span))
        optimum, _ = minimum_slots_region(tile, patch)
        rows.append({
            "prototile": tile.name,
            "|N|": tile.size,
            "schedule slots": session.num_slots,
            "patch optimum": optimum,
            "collision-free": collision_free,
        })
    passed = all(r["schedule slots"] == r["|N|"] == r["patch optimum"]
                 and r["collision-free"] for r in rows)
    return ExperimentResult(
        "thm1", "Theorem 1: optimal schedules from tilings",
        "m = |N| slots, collision-free, optimal (distance-2 chromatic "
        "number of any core patch equals |N|)",
        rows, passed)


def respectable_pair_tiling() -> MultiTiling:
    """A respectable two-prototile tiling used by thm2.

    ``N_1`` is the 2x2 square tetromino, ``N_2`` the vertical domino
    (``N_2`` a subset of ``N_1``, so the tiling is respectable).  Period
    ``4Z x 2Z``: one square tile plus two domino columns.
    """
    square = rectangle_tile(2, 2)
    domino = rectangle_tile(1, 2)
    period = diagonal_sublattice((4, 2))
    return MultiTiling([square, domino], [[(0, 0)], [(2, 0), (3, 0)]],
                       period)


def run_thm2() -> ExperimentResult:
    """Theorem 2 on a respectable two-prototile tiling."""
    multi = respectable_pair_tiling()
    session = Session.for_multi_tiling(multi,
                                       window=Box((-8, -8), (8, 8)))
    collision_free = session.verify().collision_free
    optimum, _ = minimum_slots(multi)
    expected = respectable_optimal_slots(multi)
    rows = [{
        "prototiles": "2x2 square + 1x2 domino",
        "respectable": multi.is_respectable(),
        "|N1|": expected,
        "thm2 slots": session.num_slots,
        "exact optimum": optimum,
        "collision-free": collision_free,
    }]
    passed = (multi.is_respectable() and collision_free
              and session.num_slots == expected == optimum)
    return ExperimentResult(
        "thm2", "Theorem 2: respectable multi-prototile tilings",
        "m = |N1| slots, collision-free, optimal",
        rows, passed)


def run_finite() -> ExperimentResult:
    """Conclusions: restriction to a finite region D."""
    tile = plus_pentomino()
    schedule = Session.for_prototile(tile).schedule
    regions = [
        ("1x1", box_region((0, 0), (0, 0))),
        ("2x2", box_region((0, 0), (1, 1))),
        ("3x3", box_region((-1, -1), (1, 1))),
        ("5x5", box_region((-2, -2), (2, 2))),
        ("7x7", box_region((-3, -3), (3, 3))),
        ("9x9", box_region((-4, -4), (4, 4))),
    ]
    rows = []
    for label, region in regions:
        report = restriction_report(tile, region, schedule)
        report["region"] = label
        rows.append({key: report[key] for key in
                     ("region", "region_points", "criterion_n_plus_n",
                      "tiling_slots", "finite_optimum")})
    # Expectation: criterion true -> optimum == |N|; criterion false is
    # *sufficient only*, but small windows should show optimum < |N|.
    criterion_ok = all(
        row["finite_optimum"] == tile.size
        for row in rows if row["criterion_n_plus_n"])
    small_window_gain = any(
        row["finite_optimum"] < tile.size for row in rows)
    passed = criterion_ok and small_window_gain
    return ExperimentResult(
        "finite", "Finite restriction (Conclusions)",
        "if D contains a translate of N+N, the restricted schedule "
        "remains optimal (needs |N| slots); tiny windows need fewer",
        rows, passed,
        notes="criterion is sufficient, not necessary")
