"""Shared experiment infrastructure: results, tables, registry.

Every experiment module exposes ``run() -> ExperimentResult``; the result
carries the regenerated rows, the paper's expectation, and a pass flag so
``python -m repro.experiments all`` doubles as a reproduction check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentResult", "format_rows"]


@dataclass
class ExperimentResult:
    """Outcome of one reproduction experiment.

    Attributes:
        experiment_id: short id (``fig1`` ... ``fig5``, ``thm1``, ...).
        title: human-readable name.
        paper_expectation: what the paper claims (the "expected shape").
        rows: regenerated data rows.
        passed: whether the measured rows match the expectation.
        notes: free-form commentary (deviations, parameters).
    """

    experiment_id: str
    title: str
    paper_expectation: str
    rows: list[dict] = field(default_factory=list)
    passed: bool = False
    notes: str = ""

    def render(self) -> str:
        """Multi-line report for terminals and EXPERIMENTS.md."""
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"[{self.experiment_id}] {self.title} — {status}",
            f"  paper: {self.paper_expectation}",
        ]
        if self.rows:
            table = format_rows(self.rows)
            lines.extend("  " + line for line in table.splitlines())
        if self.notes:
            lines.append(f"  notes: {self.notes}")
        return "\n".join(lines)


def format_rows(rows: list[dict]) -> str:
    """Fixed-width table over a homogeneous list of dict rows."""
    if not rows:
        return "(no rows)"
    headers = list(rows[0])
    widths = {h: max(len(str(h)), *(len(str(r.get(h, ""))) for r in rows))
              for h in headers}
    lines = ["  ".join(str(h).ljust(widths[h]) for h in headers)]
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append("  ".join(str(row.get(h, "")).ljust(widths[h])
                               for h in headers))
    return "\n".join(lines)
