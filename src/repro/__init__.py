"""repro — reproduction of "Scheduling Sensors by Tiling Lattices".

Klappenecker, Lee, Welch (PODC 2008 / arXiv:0806.1271): deterministic,
collision-free, slot-optimal broadcast schedules for sensors on lattice
points, derived from lattice tilings.

Quickstart::

    from repro import schedule_for

    schedule = schedule_for(chebyshev_radius=1)   # 3x3 neighborhood
    schedule.slot_of((10, 7))                      # -> slot in 0..8

Package layout:

* :mod:`repro.lattice` — Euclidean lattices, sublattices, Voronoi cells
* :mod:`repro.tiles` — prototiles (neighborhoods), exactness deciders
* :mod:`repro.tiling` — lattice / periodic / multi-prototile tilings
* :mod:`repro.core` — the paper's schedules (Theorems 1 and 2), optimality
* :mod:`repro.graphs` — baselines: distance-2 coloring, TDMA, annealing
* :mod:`repro.net` — slotted wireless simulator with the paper's collision
  semantics
* :mod:`repro.viz` — ASCII and SVG rendering of the paper's figures
* :mod:`repro.experiments` — per-figure reproduction harness
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.tiles.prototile import Prototile
from repro.tiles.shapes import chebyshev_ball, directional_antenna, plus_pentomino


def schedule_for(chebyshev_radius: int = 1, dimension: int = 2):
    """Convenience: optimal schedule for a Chebyshev-ball neighborhood.

    Builds the radius-``r`` Chebyshev neighborhood, finds a tiling, and
    returns the Theorem 1 schedule (``(2r+1)^d`` slots).
    """
    from repro.core.theorem1 import schedule_from_prototile

    return schedule_from_prototile(chebyshev_ball(chebyshev_radius, dimension))


__all__ = [
    "Prototile",
    "chebyshev_ball",
    "directional_antenna",
    "plus_pentomino",
    "schedule_for",
    "__version__",
]
