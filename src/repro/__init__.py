"""repro — reproduction of "Scheduling Sensors by Tiling Lattices".

Klappenecker, Lee, Welch (PODC 2008 / arXiv:0806.1271): deterministic,
collision-free, slot-optimal broadcast schedules for sensors on lattice
points, derived from lattice tilings.

Quickstart (the typed facade)::

    from repro import Box, EngineConfig, Session

    session = Session.for_chebyshev(1)             # 3x3 neighborhood
    session.assign([(10, 7)]).slots                # -> [slot in 0..8]
    report = session.verify(window=Box((-10, -10), (10, 10)))
    assert report.collision_free
    session.simulate("aloha", slots=90, p=0.2)     # SimulationMetrics

Engine configuration is an explicit, typed value — ``EngineConfig(
backend="python", workers=4)`` — passed per session or per call; the
``REPRO_ENGINE`` / ``REPRO_ENGINE_WORKERS`` env vars keep working as
lazily-resolved fallbacks.  The legacy free functions (:func:`
schedule_for`, :func:`find_collisions`, :func:`verify_collision_free`,
:func:`simulate`) remain first-class and are pinned bit-identical to
their :class:`Session` counterparts by the equivalence suite.

Package layout:

* :mod:`repro.api` — the :class:`Session`/:class:`EngineConfig` facade
  unifying scheduling, verification and simulation
* :mod:`repro.lattice` — Euclidean lattices, sublattices, Voronoi cells
* :mod:`repro.tiles` — prototiles (neighborhoods), exactness deciders
* :mod:`repro.tiling` — lattice / periodic / multi-prototile tilings
* :mod:`repro.core` — the paper's schedules (Theorems 1 and 2), optimality
* :mod:`repro.engine` — vectorized bulk kernels, backend gate, sharding
* :mod:`repro.graphs` — baselines: distance-2 coloring, TDMA, annealing
* :mod:`repro.net` — slotted wireless simulator with the paper's collision
  semantics, MAC protocols and the name registry
* :mod:`repro.viz` — ASCII and SVG rendering of the paper's figures
* :mod:`repro.experiments` — per-figure reproduction harness
* :mod:`repro.scenarios` — deterministic scenario generation plus the
  differential oracle cross-checking every engine path
"""

from __future__ import annotations

__version__ = "1.1.0"

from repro.api import (
    Box,
    EngineConfig,
    Session,
    SlotAssignment,
    VerificationReport,
    default_config,
    set_default_config,
    use_config,
)
from repro.core.schedule import find_collisions, verify_collision_free
from repro.net.protocols import make_protocol, protocol_names, \
    register_protocol
from repro.net.simulator import simulate
from repro.tiles.prototile import Prototile
from repro.tiles.shapes import chebyshev_ball, directional_antenna, plus_pentomino


def schedule_for(chebyshev_radius: int = 1, dimension: int = 2):
    """Convenience: optimal schedule for a Chebyshev-ball neighborhood.

    Builds the radius-``r`` Chebyshev neighborhood, finds a tiling, and
    returns the Theorem 1 schedule (``(2r+1)^d`` slots).  The facade
    counterpart is ``Session.for_chebyshev(r, d).schedule``.
    """
    from repro.core.theorem1 import schedule_from_prototile

    return schedule_from_prototile(chebyshev_ball(chebyshev_radius, dimension))


__all__ = [
    "Box",
    "EngineConfig",
    "Session",
    "SlotAssignment",
    "VerificationReport",
    "Prototile",
    "chebyshev_ball",
    "default_config",
    "directional_antenna",
    "find_collisions",
    "make_protocol",
    "plus_pentomino",
    "protocol_names",
    "register_protocol",
    "schedule_for",
    "set_default_config",
    "simulate",
    "use_config",
    "verify_collision_free",
    "__version__",
]
