"""Hopfield-network broadcast scheduler (Shi–Wang style).

The paper cites Shi and Wang's "neural-network-based hybrid algorithm" for
broadcast scheduling in wireless multihop networks.  This module
implements the discrete Hopfield formulation: one winner-take-all group of
``m`` binary neurons per sensor (exactly one active = the chosen slot),
with the network energy

    ``E = sum_{x ~ y} sum_k V[x,k] V[y,k]``

minimized by asynchronous group updates: a sensor's group activates the
slot with the least conflict field (ties broken randomly), which never
increases ``E`` — so the dynamics converge to a local minimum.  Random
restarts provide the "hybrid" global component.  ``E == 0`` certifies a
proper schedule.
"""

from __future__ import annotations

from repro.graphs.coloring import dsatur_coloring, is_proper_coloring
from repro.utils.rng import make_rng
from repro.utils.validation import require_positive

__all__ = ["hopfield_coloring", "hopfield_minimum_slots"]


def hopfield_coloring(graph: dict, num_slots: int,
                      seed: int | None = None,
                      max_sweeps: int = 200,
                      restarts: int = 5) -> dict | None:
    """Attempt a proper ``num_slots``-coloring with a Hopfield network.

    Returns the coloring, or ``None`` if no restart reaches zero energy.
    """
    require_positive(num_slots, "num_slots")
    nodes = sorted(graph, key=repr)
    rng = make_rng(seed)

    for _ in range(max(1, restarts)):
        slots = {node: rng.randrange(num_slots) for node in nodes}
        for _ in range(max_sweeps):
            changed = False
            order = list(nodes)
            rng.shuffle(order)
            for node in order:
                # Conflict field: how many neighbors occupy each slot.
                field = [0] * num_slots
                for neighbor in graph[node]:
                    field[slots[neighbor]] += 1
                best = min(field)
                if field[slots[node]] > best:
                    candidates = [k for k, f in enumerate(field) if f == best]
                    slots[node] = rng.choice(candidates)
                    changed = True
            if not changed:
                break
        if is_proper_coloring(graph, slots):
            return slots
    return None


def hopfield_minimum_slots(graph: dict, seed: int | None = None
                           ) -> tuple[int, dict]:
    """Smallest slot count the Hopfield scheduler certifies.

    DSATUR seeds the upper bound; ``k`` decreases while the network keeps
    reaching zero energy.  Heuristic upper bound on the chromatic number.
    """
    if not graph:
        return 0, {}
    base = dsatur_coloring(graph)
    best_k = max(base.values()) + 1
    best_coloring = base
    rng = make_rng(seed)
    k = best_k - 1
    while k >= 1:
        found = hopfield_coloring(graph, k, seed=rng.getrandbits(32))
        if found is None:
            break
        best_k, best_coloring = k, found
        k -= 1
    return best_k, best_coloring
