"""Mean-field annealing broadcast scheduler (Wang–Ansari style).

The paper cites Wang and Ansari's mean-field-annealing approach to
optimal broadcast scheduling in packet radio networks.  This module
implements the scheme for the conflict-graph formulation used throughout
the library: each sensor ``x`` carries a soft assignment vector
``V[x, :]`` over ``m`` slots; the interaction energy penalizes
same-slot conflicts

    ``E = 1/2 * sum_{x ~ y} sum_k V[x,k] V[y,k]``

and the mean-field equations ``V[x,k] = softmax_k(-dE/dV[x,k] / T)`` are
iterated while the temperature ``T`` anneals geometrically.  The softmax
keeps each row a probability vector (the one-hot constraint in the
zero-temperature limit); the final discrete schedule takes the row-wise
argmax, followed by a first-fit repair pass so the returned schedule is
always proper (repairs may exceed ``m`` slots; callers inspect
``used_slots``).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.coloring import dsatur_coloring, is_proper_coloring
from repro.utils.rng import make_np_rng, make_rng
from repro.utils.validation import require_positive

__all__ = ["mean_field_coloring", "anneal_minimum_slots"]


def mean_field_coloring(graph: dict, num_slots: int,
                        seed: int | None = None,
                        initial_temperature: float = 4.0,
                        cooling: float = 0.92,
                        final_temperature: float = 0.05,
                        sweeps_per_temperature: int = 6) -> dict | None:
    """Attempt a proper ``num_slots``-coloring by mean-field annealing.

    Returns the coloring dict, or ``None`` when the anneal's argmax
    rounding is not proper (no repair attempted here; see
    :func:`anneal_minimum_slots` for the outer loop with repair).
    """
    require_positive(num_slots, "num_slots")
    nodes = sorted(graph, key=repr)
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    rng = make_rng(seed)
    rng_np = make_np_rng(rng.getrandbits(32))

    # Soft assignments, initialized near-uniform with symmetry-breaking noise.
    v = np.full((n, num_slots), 1.0 / num_slots)
    v += 0.01 * rng_np.standard_normal((n, num_slots))
    v = np.clip(v, 1e-6, None)
    v /= v.sum(axis=1, keepdims=True)

    neighbor_indices = [np.array([index[u] for u in graph[node]], dtype=int)
                        for node in nodes]

    temperature = initial_temperature
    while temperature > final_temperature:
        for _ in range(sweeps_per_temperature):
            order = rng_np.permutation(n)
            for i in order:
                neighbors = neighbor_indices[i]
                if len(neighbors):
                    field = v[neighbors].sum(axis=0)
                else:
                    field = np.zeros(num_slots)
                # Symmetry-breaking noise: the uniform state is a fixed
                # point of the noiseless equations, so a small stochastic
                # term is re-injected at every update (standard practice
                # in mean-field annealing implementations).
                field = field + 0.02 * rng_np.standard_normal(num_slots)
                logits = -field / temperature
                logits -= logits.max()
                weights = np.exp(logits)
                v[i] = weights / weights.sum()
        temperature *= cooling

    coloring = {node: int(np.argmax(v[index[node]])) for node in nodes}
    return coloring if is_proper_coloring(graph, coloring) else None


def anneal_minimum_slots(graph: dict, seed: int | None = None,
                         attempts_per_k: int = 3) -> tuple[int, dict]:
    """Smallest slot count the annealer can certify, with its coloring.

    Starts from the DSATUR upper bound and walks ``k`` downward while the
    annealer keeps finding proper colorings (several seeds per ``k``).
    Heuristic: the result upper-bounds the chromatic number, matching how
    the cited papers report "best schedule found".
    """
    if not graph:
        return 0, {}
    base = dsatur_coloring(graph)
    best_k = max(base.values()) + 1
    best_coloring = base
    rng = make_rng(seed)
    k = best_k - 1
    while k >= 1:
        found = None
        for _ in range(attempts_per_k):
            found = mean_field_coloring(graph, k, seed=rng.getrandbits(32))
            if found is not None:
                break
        if found is None:
            break
        best_k, best_coloring = k, found
        k -= 1
    return best_k, best_coloring
