"""Scheduling baselines: interference graphs, coloring, TDMA, heuristics."""

from repro.graphs.anneal import anneal_minimum_slots, mean_field_coloring
from repro.graphs.coloring import (
    dsatur_coloring,
    exact_chromatic_number,
    greedy_clique,
    greedy_coloring,
    is_proper_coloring,
    k_coloring,
)
from repro.graphs.hopfield import hopfield_coloring, hopfield_minimum_slots
from repro.graphs.interference import (
    conflict_graph,
    conflict_graph_homogeneous,
    distance2_conflicts,
    graph_degree_stats,
    interference_graph,
)
from repro.graphs.tdma import tdma_round_length, tdma_schedule

__all__ = [
    "anneal_minimum_slots",
    "conflict_graph",
    "conflict_graph_homogeneous",
    "distance2_conflicts",
    "dsatur_coloring",
    "exact_chromatic_number",
    "graph_degree_stats",
    "greedy_clique",
    "greedy_coloring",
    "hopfield_coloring",
    "hopfield_minimum_slots",
    "interference_graph",
    "is_proper_coloring",
    "k_coloring",
    "mean_field_coloring",
    "tdma_round_length",
    "tdma_schedule",
]
