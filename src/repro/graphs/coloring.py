"""Graph coloring: greedy, DSATUR, and exact branch-and-bound.

The scheduling problem the paper studies is NP-complete in general
(McCormick; Lloyd–Ramanathan for planar graphs with 7 slots), which is why
the tiling construction matters: it produces *provably optimal* schedules
on lattices in polynomial time.  These general-graph algorithms serve as
the baselines the paper positions itself against, and as independent
oracles for the optimality claims on finite patches.

All functions operate on undirected graphs in adjacency-set form
(``dict[node, set[node]]``); nodes may be any hashable values.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

__all__ = [
    "greedy_coloring",
    "dsatur_coloring",
    "greedy_clique",
    "k_coloring",
    "exact_chromatic_number",
    "is_proper_coloring",
]

Node = Hashable
AdjGraph = dict


def is_proper_coloring(graph: AdjGraph, coloring: dict) -> bool:
    """True when no edge is monochromatic and every node is colored."""
    for node, neighbors in graph.items():
        if node not in coloring:
            return False
        for other in neighbors:
            if coloring[node] == coloring.get(other):
                return False
    return True


def greedy_coloring(graph: AdjGraph,
                    order: Sequence[Node] | None = None) -> dict:
    """First-fit coloring in the given (default: sorted) vertex order.

    Uses at most ``max_degree + 1`` colors; order-sensitive, which tests
    exploit to show the gap to the tiling optimum.
    """
    if order is None:
        order = sorted(graph)
    coloring: dict = {}
    for node in order:
        used = {coloring[n] for n in graph[node] if n in coloring}
        color = 0
        while color in used:
            color += 1
        coloring[node] = color
    return coloring


def dsatur_coloring(graph: AdjGraph) -> dict:
    """DSATUR (Brelaz): color the most saturation-constrained vertex first.

    Exact on many structured graphs and a strong general upper bound;
    used as the initial bound for the exact solver.
    """
    coloring: dict = {}
    saturation: dict = {node: set() for node in graph}
    uncolored = set(graph)
    while uncolored:
        node = max(uncolored,
                   key=lambda v: (len(saturation[v]), len(graph[v]),
                                  _stable_key(v)))
        used = saturation[node]
        color = 0
        while color in used:
            color += 1
        coloring[node] = color
        uncolored.discard(node)
        for neighbor in graph[node]:
            if neighbor in uncolored:
                saturation[neighbor].add(color)
    return coloring


def greedy_clique(graph: AdjGraph) -> list:
    """A maximal clique found greedily from the highest-degree vertex.

    Its size lower-bounds the chromatic number; on prototile conflict
    graphs the cells of ``N`` form such a clique (the paper's Theorem 1
    lower-bound argument).
    """
    if not graph:
        return []
    start = max(graph, key=lambda v: (len(graph[v]), _stable_key(v)))
    clique = [start]
    candidates = set(graph[start])
    while candidates:
        node = max(candidates, key=lambda v: (len(graph[v] & candidates),
                                              _stable_key(v)))
        clique.append(node)
        candidates &= graph[node]
    return clique


def k_coloring(graph: AdjGraph, k: int,
               preassigned: dict | None = None) -> dict | None:
    """Find a proper ``k``-coloring by backtracking, or ``None``.

    Branches on the uncolored vertex with the fewest available colors
    (fail-first), with forward checking.  ``preassigned`` pins colors
    (used to break symmetry by fixing a clique).
    """
    coloring: dict = dict(preassigned or {})
    for node, color in coloring.items():
        if color >= k:
            return None
        for other in graph[node]:
            if coloring.get(other) == color:
                return None
    available: dict = {}
    for node in graph:
        if node in coloring:
            continue
        used = {coloring[n] for n in graph[node] if n in coloring}
        available[node] = set(range(k)) - used
        if not available[node]:
            return None

    def backtrack() -> bool:
        if not available:
            return True
        node = min(available,
                   key=lambda v: (len(available[v]), -len(graph[v]),
                                  _stable_key(v)))
        choices = sorted(available.pop(node))
        for color in choices:
            touched = []
            feasible = True
            for neighbor in graph[node]:
                if neighbor in available and color in available[neighbor]:
                    available[neighbor].discard(color)
                    touched.append(neighbor)
                    if not available[neighbor]:
                        feasible = False
            coloring[node] = color
            if feasible and backtrack():
                return True
            del coloring[node]
            for neighbor in touched:
                available[neighbor].add(color)
        available[node] = set(choices)
        return False

    return coloring if backtrack() else None


def exact_chromatic_number(graph: AdjGraph) -> tuple[int, dict]:
    """Exact chromatic number with a witness coloring.

    Lower bound from a greedy clique, upper bound from DSATUR, then
    descending ``k``-coloring searches with the clique pre-colored to
    break symmetry.  Exponential worst case (the problem is NP-complete);
    intended for the small certificate graphs of the experiments.
    """
    if not graph:
        return 0, {}
    clique = greedy_clique(graph)
    lower = len(clique)
    best = dsatur_coloring(graph)
    upper = max(best.values()) + 1
    if upper == lower:
        return lower, best
    for k in range(upper - 1, lower - 1, -1):
        preassigned = {node: i for i, node in enumerate(clique)}
        attempt = k_coloring(graph, k, preassigned)
        if attempt is None:
            return k + 1, best
        best = attempt
    return lower, best


def _stable_key(value) -> str:
    """Deterministic tiebreak for heterogeneous node types."""
    return repr(value)
