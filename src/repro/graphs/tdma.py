"""Plain TDMA: the paper's non-scalable baseline.

"The simplest way to ensure that the communication will be collision-free
is to use a time division multiple access (TDMA) scheme.  Here each of the
k sensors is assigned a different time slot and scheduling is done in a
round robin fashion.  [...]  The obvious disadvantage of TDMA is that it
does not scale."
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.schedule import MappingSchedule
from repro.utils.vectors import as_intvec

__all__ = ["tdma_schedule", "tdma_round_length"]


def tdma_schedule(points: Iterable[Sequence[int]]) -> MappingSchedule:
    """One distinct slot per sensor, in sorted position order.

    Trivially collision-free for any interference structure, with a round
    length equal to the number of sensors — the quantity the scaling
    experiment plots against the tiling schedule's constant ``|N|``.
    """
    ordered = sorted(as_intvec(p) for p in points)
    return MappingSchedule({p: i for i, p in enumerate(ordered)})


def tdma_round_length(num_sensors: int) -> int:
    """Round length of plain TDMA (identity; kept for report symmetry)."""
    return num_sensors
