"""Interference graphs and broadcast-scheduling conflict graphs.

The paper relates its schedules to graph coloring: build "a directed graph
that has a node for each sensor and an edge from vertex v to vertex u if
and only if u is affected by the radio communication of v"; a valid
schedule with ``m`` slots is then a distance-2 coloring with ``m`` colors.

Two graph views are provided:

* :func:`interference_graph` — the paper's directed graph;
* :func:`conflict_graph` — the undirected graph whose proper colorings are
  exactly the collision-free schedules: ``x ~ y`` iff their interference
  ranges intersect, i.e. ``(x + N_x) cap (y + N_y) != {}``.

For neighborhoods containing 0 (as prototiles must), two sensors at
directed distance <= 2 have intersecting ranges and vice versa, so
coloring :func:`conflict_graph` is the distance-2 coloring of the paper.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.tiles.prototile import Prototile
from repro.utils.vectors import IntVec, as_intvec, vadd, vsub

__all__ = [
    "Graph",
    "interference_graph",
    "conflict_graph",
    "conflict_graph_homogeneous",
    "distance2_conflicts",
    "graph_degree_stats",
]

Graph = dict[IntVec, set[IntVec]]
NeighborhoodFn = Callable[[IntVec], frozenset[IntVec]]


def interference_graph(points: Iterable[Sequence[int]],
                       neighborhood_of: NeighborhoodFn) -> Graph:
    """The paper's directed graph: ``v -> u`` iff ``u in v + N_v``.

    Self-loops are omitted (a sensor trivially "affects" itself).
    """
    point_list = [as_intvec(p) for p in points]
    point_set = set(point_list)
    graph: Graph = {p: set() for p in point_list}
    for v in point_list:
        for u in neighborhood_of(v):
            if u != v and u in point_set:
                graph[v].add(u)
    return graph


def conflict_graph(points: Iterable[Sequence[int]],
                   neighborhood_of: NeighborhoodFn) -> Graph:
    """Undirected conflicts: ``x ~ y`` iff interference ranges intersect.

    Proper colorings of this graph are exactly the collision-free slot
    assignments for the sensor set, so its chromatic number is the
    optimal slot count for the finite deployment.
    """
    point_list = [as_intvec(p) for p in points]
    graph: Graph = {p: set() for p in point_list}
    ranges = {p: neighborhood_of(p) for p in point_list}
    # Bucket sensors by range cell so intersection tests are local.
    by_cell: dict[IntVec, list[IntVec]] = {}
    for p, cells in ranges.items():
        for cell in cells:
            by_cell.setdefault(cell, []).append(p)
    for owners in by_cell.values():
        for i, x in enumerate(owners):
            for y in owners[i + 1:]:
                if x != y:
                    graph[x].add(y)
                    graph[y].add(x)
    return graph


def conflict_graph_homogeneous(points: Iterable[Sequence[int]],
                               prototile: Prototile) -> Graph:
    """Conflict graph when every sensor has the same neighborhood ``N``.

    Uses the difference-set shortcut: ``x ~ y`` iff ``y - x`` is in
    ``(N - N) \\ {0}`` — no explicit range intersection needed.
    """
    offsets = [d for d in prototile.difference_set()
               if any(x != 0 for x in d)]
    point_list = [as_intvec(p) for p in points]
    point_set = set(point_list)
    graph: Graph = {p: set() for p in point_list}
    for x in point_list:
        for delta in offsets:
            y = vadd(x, delta)
            if y in point_set:
                graph[x].add(y)
    return graph


def distance2_conflicts(directed: Graph) -> Graph:
    """Distance-2 conflicts of a directed interference graph.

    Vertices ``u != v`` conflict when one affects the other directly
    (distance 1) or when both affect a common vertex / are affected via a
    length-2 path (distance 2) — the "broadcast scheduling" notion the
    paper cites from the networking community.
    """
    conflicts: Graph = {v: set() for v in directed}

    def add(u: IntVec, v: IntVec) -> None:
        if u != v:
            conflicts[u].add(v)
            conflicts[v].add(u)

    for v, outs in directed.items():
        for u in outs:
            add(v, u)  # distance 1
    # Two senders with a common affected vertex collide at that receiver.
    incoming: dict[IntVec, list[IntVec]] = {v: [] for v in directed}
    for v, outs in directed.items():
        for u in outs:
            incoming[u].append(v)
    for receivers in incoming.values():
        for i, a in enumerate(receivers):
            for b in receivers[i + 1:]:
                add(a, b)
    # Length-2 directed paths: v -> u -> w means w hears u; if v also
    # transmits, u's own transmission is lost at w only when u transmits,
    # which the common-receiver rule above already covers via u.  The
    # remaining distance-2 pairs are v and w with v -> u -> w.
    for v, outs in directed.items():
        for u in outs:
            for w in directed.get(u, ()):  # second hop
                add(v, w)
    return conflicts


def graph_degree_stats(graph: Graph) -> tuple[int, float]:
    """(max degree, mean degree) of an undirected graph."""
    if not graph:
        return 0, 0.0
    degrees = [len(neighbors) for neighbors in graph.values()]
    return max(degrees), sum(degrees) / len(degrees)
