"""Foundational utilities: exact vector/matrix algebra, validation, RNG."""

from repro.utils.intlin import (
    CosetSpace,
    determinant,
    enumerate_hnf_matrices,
    hermite_normal_form,
    smith_normal_form,
)
from repro.utils.rng import make_rng, spawn_rng
from repro.utils.vectors import IntVec, as_intvec, difference_set, minkowski_sum

__all__ = [
    "CosetSpace",
    "IntVec",
    "as_intvec",
    "determinant",
    "difference_set",
    "enumerate_hnf_matrices",
    "hermite_normal_form",
    "make_rng",
    "minkowski_sum",
    "smith_normal_form",
    "spawn_rng",
]
