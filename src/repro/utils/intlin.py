"""Exact integer linear algebra for lattice computations.

Implements, from scratch and with arbitrary-precision Python integers:

* Bareiss fraction-free determinants,
* column-style Hermite normal form (HNF),
* Smith normal form (SNF) with transform matrices,
* canonical coset representatives modulo a sublattice (:class:`CosetSpace`),
* enumeration of all sublattices of ``Z^d`` of a given index.

These primitives power the tiling machinery: a sublattice tiling of ``Z^d``
by a prototile ``N`` is exactly a sublattice of index ``|N|`` whose cosets
are represented bijectively by the elements of ``N`` (see
:mod:`repro.tiles.exactness`).

Matrices are lists of row lists of ``int``; column ``j`` of ``M`` is
``[M[i][j] for i in range(d)]``.  Columns are generator vectors.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence
from fractions import Fraction

from repro.utils.vectors import IntVec

IntMatrix = list[list[int]]

__all__ = [
    "IntMatrix",
    "identity_matrix",
    "copy_matrix",
    "matrix_from_columns",
    "matrix_columns",
    "mat_mul",
    "mat_vec",
    "transpose",
    "determinant",
    "is_unimodular",
    "hermite_normal_form",
    "smith_normal_form",
    "solve_lower_triangular",
    "CosetSpace",
    "enumerate_hnf_matrices",
    "divisor_tuples",
]


def identity_matrix(d: int) -> IntMatrix:
    """The ``d x d`` identity matrix."""
    return [[1 if i == j else 0 for j in range(d)] for i in range(d)]


def copy_matrix(m: Sequence[Sequence[int]]) -> IntMatrix:
    """Deep copy of an integer matrix into list-of-lists form."""
    return [list(row) for row in m]


def matrix_from_columns(columns: Sequence[IntVec]) -> IntMatrix:
    """Build a matrix whose ``j``-th column is ``columns[j]``."""
    if not columns:
        raise ValueError("matrix_from_columns requires at least one column")
    d = len(columns[0])
    for col in columns:
        if len(col) != d:
            raise ValueError("columns have mismatched dimensions")
    return [[columns[j][i] for j in range(len(columns))] for i in range(d)]


def matrix_columns(m: Sequence[Sequence[int]]) -> list[IntVec]:
    """Return the columns of ``m`` as integer tuples."""
    rows = len(m)
    cols = len(m[0]) if rows else 0
    return [tuple(m[i][j] for i in range(rows)) for j in range(cols)]


def mat_mul(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> IntMatrix:
    """Exact matrix product ``a @ b``."""
    rows, inner, cols = len(a), len(b), len(b[0])
    if any(len(row) != inner for row in a):
        raise ValueError("matrix dimensions do not match for multiplication")
    return [
        [sum(a[i][k] * b[k][j] for k in range(inner)) for j in range(cols)]
        for i in range(rows)
    ]


def mat_vec(a: Sequence[Sequence[int]], x: Sequence[int]) -> IntVec:
    """Exact matrix-vector product ``a @ x`` as a tuple."""
    if any(len(row) != len(x) for row in a):
        raise ValueError("matrix/vector dimensions do not match")
    return tuple(sum(row[k] * x[k] for k in range(len(x))) for row in a)


def transpose(m: Sequence[Sequence[int]]) -> IntMatrix:
    """Matrix transpose."""
    return [list(col) for col in zip(*m)]


def determinant(m: Sequence[Sequence[int]]) -> int:
    """Exact determinant via the Bareiss fraction-free algorithm.

    Runs in ``O(d^3)`` integer operations without introducing fractions,
    so intermediate values stay integral and exact for any size of entry.
    """
    d = len(m)
    if any(len(row) != d for row in m):
        raise ValueError("determinant requires a square matrix")
    a = copy_matrix(m)
    sign = 1
    prev_pivot = 1
    for k in range(d - 1):
        if a[k][k] == 0:
            pivot_row = next((r for r in range(k + 1, d) if a[r][k] != 0), None)
            if pivot_row is None:
                return 0
            a[k], a[pivot_row] = a[pivot_row], a[k]
            sign = -sign
        for i in range(k + 1, d):
            for j in range(k + 1, d):
                a[i][j] = (a[i][j] * a[k][k] - a[i][k] * a[k][j]) // prev_pivot
            a[i][k] = 0
        prev_pivot = a[k][k]
    return sign * a[d - 1][d - 1]


def is_unimodular(m: Sequence[Sequence[int]]) -> bool:
    """True when ``m`` is square with determinant ``+-1``."""
    return abs(determinant(m)) == 1


def _swap_columns(m: IntMatrix, i: int, j: int) -> None:
    for row in m:
        row[i], row[j] = row[j], row[i]


def _add_column_multiple(m: IntMatrix, target: int, source: int, factor: int) -> None:
    """Column operation ``col[target] += factor * col[source]``."""
    for row in m:
        row[target] += factor * row[source]


def _negate_column(m: IntMatrix, j: int) -> None:
    for row in m:
        row[j] = -row[j]


def hermite_normal_form(
    m: Sequence[Sequence[int]],
) -> tuple[IntMatrix, IntMatrix]:
    """Column-style Hermite normal form of a nonsingular square matrix.

    Returns ``(H, U)`` with ``H = M @ U``, ``U`` unimodular, ``H`` lower
    triangular with positive diagonal and ``0 <= H[i][j] < H[i][i]`` for
    ``j < i``.  The columns of ``H`` generate the same lattice as the
    columns of ``M``.

    Raises:
        ValueError: if ``m`` is singular (its columns do not generate a
            full-rank lattice).
    """
    d = len(m)
    if any(len(row) != d for row in m):
        raise ValueError("hermite_normal_form requires a square matrix")
    h = copy_matrix(m)
    u = identity_matrix(d)
    for i in range(d):
        # Clear row i to the right of the diagonal by gcd column operations.
        for j in range(i + 1, d):
            while h[i][j] != 0:
                if h[i][i] == 0:
                    _swap_columns(h, i, j)
                    _swap_columns(u, i, j)
                    continue
                q = h[i][j] // h[i][i]
                _add_column_multiple(h, j, i, -q)
                _add_column_multiple(u, j, i, -q)
                if h[i][j] != 0:
                    _swap_columns(h, i, j)
                    _swap_columns(u, i, j)
        if h[i][i] == 0:
            raise ValueError("matrix is singular; columns do not span full rank")
        if h[i][i] < 0:
            _negate_column(h, i)
            _negate_column(u, i)
        # Reduce entries to the left of the diagonal into [0, H[i][i]).
        for j in range(i):
            q = h[i][j] // h[i][i]
            if q:
                _add_column_multiple(h, j, i, -q)
                _add_column_multiple(u, j, i, -q)
    return h, u


def smith_normal_form(
    m: Sequence[Sequence[int]],
) -> tuple[IntMatrix, IntMatrix, IntMatrix]:
    """Smith normal form ``S = U @ M @ V`` of a square integer matrix.

    Returns ``(U, S, V)`` where ``U`` and ``V`` are unimodular and ``S`` is
    diagonal with nonnegative entries satisfying ``S[i][i] | S[i+1][i+1]``.
    The diagonal entries are the invariant factors of the abelian group
    ``Z^d / M Z^d``; e.g. the translation group of a tiling of index 4 is
    either ``Z_4`` or ``Z_2 x Z_2`` depending on the SNF.
    """
    d = len(m)
    if any(len(row) != d for row in m):
        raise ValueError("smith_normal_form requires a square matrix")
    s = copy_matrix(m)
    u = identity_matrix(d)
    v = identity_matrix(d)

    def swap_rows(i: int, j: int) -> None:
        s[i], s[j] = s[j], s[i]
        u[i], u[j] = u[j], u[i]

    def add_row_multiple(target: int, source: int, factor: int) -> None:
        for col in range(d):
            s[target][col] += factor * s[source][col]
            u[target][col] += factor * u[source][col]

    def swap_cols(i: int, j: int) -> None:
        _swap_columns(s, i, j)
        _swap_columns(v, i, j)

    def add_col_multiple(target: int, source: int, factor: int) -> None:
        _add_column_multiple(s, target, source, factor)
        _add_column_multiple(v, target, source, factor)

    for t in range(d):
        # Find the nonzero entry of smallest magnitude in the trailing block.
        while True:
            pivot = None
            best = None
            for i in range(t, d):
                for j in range(t, d):
                    value = abs(s[i][j])
                    if value and (best is None or value < best):
                        best = value
                        pivot = (i, j)
            if pivot is None:
                break  # trailing block entirely zero
            pi, pj = pivot
            if pi != t:
                swap_rows(t, pi)
            if pj != t:
                swap_cols(t, pj)
            # Eliminate the pivot row and column.
            dirty = False
            for i in range(t + 1, d):
                if s[i][t]:
                    add_row_multiple(i, t, -(s[i][t] // s[t][t]))
                    if s[i][t]:
                        dirty = True
            for j in range(t + 1, d):
                if s[t][j]:
                    add_col_multiple(j, t, -(s[t][j] // s[t][t]))
                    if s[t][j]:
                        dirty = True
            if dirty:
                continue
            # Pivot must divide every entry of the trailing block.
            offender = None
            for i in range(t + 1, d):
                for j in range(t + 1, d):
                    if s[i][j] % s[t][t] != 0:
                        offender = i
                        break
                if offender is not None:
                    break
            if offender is None:
                break
            add_row_multiple(t, offender, 1)
    for t in range(d):
        if s[t][t] < 0:
            for col in range(d):
                s[t][col] = -s[t][col]
                u[t][col] = -u[t][col]
    return u, s, v


def solve_lower_triangular(h: Sequence[Sequence[int]], x: Sequence[int]) -> IntVec | None:
    """Solve ``H c = x`` over the integers for lower-triangular ``H``.

    Returns the integer coefficient vector ``c`` or ``None`` when no
    integral solution exists (i.e. ``x`` is not in the column lattice).
    """
    d = len(h)
    coefficients = [0] * d
    residual = list(x)
    for i in range(d):
        if h[i][i] == 0:
            raise ValueError("singular lower-triangular matrix")
        if residual[i] % h[i][i] != 0:
            return None
        c = residual[i] // h[i][i]
        coefficients[i] = c
        if c:
            for row in range(i, d):
                residual[row] -= c * h[row][i]
    return tuple(coefficients)


class CosetSpace:
    """The quotient ``Z^d / M Z^d`` with canonical representatives.

    Built from any nonsingular integer generator matrix ``M`` (columns
    generate the sublattice).  Internally stores the HNF ``H`` so that each
    coset has the unique representative lying in the box
    ``0 <= x[i] < H[i][i]``.

    This is the workhorse of both tiling validation (a prototile tiles by a
    sublattice iff its elements are pairwise non-congruent and
    ``index == |N|``) and of O(1)-per-sensor slot lookup in schedules.
    """

    def __init__(self, generators: Sequence[Sequence[int]]):
        self.dimension = len(generators)
        self.hnf, self.unimodular = hermite_normal_form(generators)
        self._diagonal = [self.hnf[i][i] for i in range(self.dimension)]
        self._columns = matrix_columns(self.hnf)

    @property
    def index(self) -> int:
        """Number of cosets, ``|Z^d / M Z^d| = |det M|``."""
        result = 1
        for entry in self._diagonal:
            result *= entry
        return result

    def canonical(self, x: Sequence[int]) -> IntVec:
        """Canonical representative of ``x``'s coset (box form)."""
        if len(x) != self.dimension:
            raise ValueError(
                f"point dimension {len(x)} != lattice dimension {self.dimension}"
            )
        reduced = list(x)
        for i in range(self.dimension):
            q = reduced[i] // self._diagonal[i]
            if q:
                column = self._columns[i]
                for row in range(i, self.dimension):
                    reduced[row] -= q * column[row]
        return tuple(reduced)

    def contains(self, x: Sequence[int]) -> bool:
        """True when ``x`` lies in the sublattice itself."""
        return all(value == 0 for value in self.canonical(x))

    def same_coset(self, a: Sequence[int], b: Sequence[int]) -> bool:
        """True when ``a`` and ``b`` differ by a sublattice vector."""
        return self.canonical(a) == self.canonical(b)

    def representatives(self) -> Iterator[IntVec]:
        """Iterate the canonical representative of every coset."""
        yield from itertools.product(*(range(entry) for entry in self._diagonal))

    def invariant_factors(self) -> list[int]:
        """Invariant factors of the quotient group (from the SNF)."""
        _, s, _ = smith_normal_form(self.hnf)
        return [s[i][i] for i in range(self.dimension) if s[i][i] != 1]

    def fractional_coordinates(self, x: Sequence[int]) -> tuple[Fraction, ...]:
        """Coordinates of ``x`` in the sublattice basis, as exact fractions."""
        # Forward substitution on the lower-triangular HNF with fractions.
        coords: list[Fraction] = []
        residual = [Fraction(value) for value in x]
        for i in range(self.dimension):
            c = residual[i] / self._diagonal[i]
            coords.append(c)
            for row in range(i, self.dimension):
                residual[row] -= c * self._columns[i][row]
        return tuple(coords)


def divisor_tuples(n: int, length: int) -> Iterator[tuple[int, ...]]:
    """All ordered tuples of ``length`` positive integers with product ``n``."""
    if n < 1 or length < 1:
        raise ValueError("divisor_tuples requires positive arguments")
    if length == 1:
        yield (n,)
        return
    for first in range(1, n + 1):
        if n % first == 0:
            for rest in divisor_tuples(n // first, length - 1):
                yield (first, *rest)


def enumerate_hnf_matrices(dimension: int, index: int) -> Iterator[IntMatrix]:
    """Enumerate every sublattice of ``Z^dimension`` of the given index.

    Sublattices are in bijection with lower-triangular column-HNF matrices
    whose diagonal entries multiply to ``index`` and whose sub-diagonal
    entries ``H[i][j]`` (``j < i``) range over ``[0, H[i][i])``.  For
    ``dimension == 2`` the count is the divisor sum ``sigma(index)``.
    """
    if dimension < 1:
        raise ValueError("dimension must be positive")
    for diagonal in divisor_tuples(index, dimension):
        below_ranges: list[Iterable[int]] = []
        positions: list[tuple[int, int]] = []
        for i in range(dimension):
            for j in range(i):
                positions.append((i, j))
                below_ranges.append(range(diagonal[i]))
        for below in itertools.product(*below_ranges):
            h = [[0] * dimension for _ in range(dimension)]
            for i in range(dimension):
                h[i][i] = diagonal[i]
            for (i, j), value in zip(positions, below):
                h[i][j] = value
            yield h
