"""Exact integer vector algebra on plain tuples.

Every lattice point in this library is represented as a ``tuple`` of Python
integers (``IntVec``).  Tuples are hashable, immutable, and support exact
arithmetic through the helpers below, which keeps the combinatorial core of
the reproduction (tilings, schedules, difference sets) free of floating
point error.  Real-valued geometry lives in :mod:`repro.lattice.lattice`,
which maps integer coordinates through an embedding basis.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Sequence

IntVec = tuple[int, ...]

__all__ = [
    "IntVec",
    "as_intvec",
    "zero",
    "vadd",
    "vsub",
    "vneg",
    "vscale",
    "vdot",
    "linf_norm",
    "l1_norm",
    "l2_norm_sq",
    "chebyshev_distance",
    "manhattan_distance",
    "bounding_box",
    "box_points",
    "minkowski_sum",
    "difference_set",
    "translate_set",
    "rotate90",
    "reflect_x",
    "lex_min",
]


def as_intvec(values: Iterable[int]) -> IntVec:
    """Coerce an iterable of integers into a canonical ``IntVec`` tuple.

    Raises:
        TypeError: if any coordinate is not an integral number.  Floats with
            integral values (``2.0``) are accepted and converted exactly.
    """
    if type(values) is tuple and all(type(v) is int for v in values):
        return values
    result = []
    for value in values:
        if isinstance(value, bool):
            raise TypeError(f"boolean is not a valid coordinate: {value!r}")
        if isinstance(value, int):
            result.append(value)
        elif isinstance(value, float) and value.is_integer():
            result.append(int(value))
        else:
            raise TypeError(f"coordinate is not an integer: {value!r}")
    return tuple(result)


def zero(dimension: int) -> IntVec:
    """Return the origin of ``Z^dimension``."""
    if dimension < 1:
        raise ValueError(f"dimension must be positive, got {dimension}")
    return (0,) * dimension


def vadd(a: IntVec, b: IntVec) -> IntVec:
    """Componentwise sum ``a + b``."""
    return tuple(x + y for x, y in zip(a, b, strict=True))


def vsub(a: IntVec, b: IntVec) -> IntVec:
    """Componentwise difference ``a - b``."""
    return tuple(x - y for x, y in zip(a, b, strict=True))


def vneg(a: IntVec) -> IntVec:
    """Componentwise negation ``-a``."""
    return tuple(-x for x in a)


def vscale(scalar: int, a: IntVec) -> IntVec:
    """Scalar multiple ``scalar * a``."""
    return tuple(scalar * x for x in a)


def vdot(a: IntVec, b: IntVec) -> int:
    """Exact inner product of two integer vectors."""
    return sum(x * y for x, y in zip(a, b, strict=True))


def linf_norm(a: IntVec) -> int:
    """Chebyshev (``l-infinity``) norm."""
    return max(abs(x) for x in a)


def l1_norm(a: IntVec) -> int:
    """Manhattan (``l1``) norm."""
    return sum(abs(x) for x in a)


def l2_norm_sq(a: IntVec) -> int:
    """Squared Euclidean norm (exact integer)."""
    return sum(x * x for x in a)


def chebyshev_distance(a: IntVec, b: IntVec) -> int:
    """Chebyshev distance between two points."""
    return linf_norm(vsub(a, b))


def manhattan_distance(a: IntVec, b: IntVec) -> int:
    """Manhattan distance between two points."""
    return l1_norm(vsub(a, b))


def bounding_box(points: Iterable[IntVec]) -> tuple[IntVec, IntVec]:
    """Return ``(lo, hi)`` corners of the tight axis-aligned bounding box.

    Raises:
        ValueError: if ``points`` is empty.
    """
    iterator = iter(points)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("bounding_box of an empty point set") from None
    lo = list(first)
    hi = list(first)
    for point in iterator:
        for i, coordinate in enumerate(point):
            if coordinate < lo[i]:
                lo[i] = coordinate
            if coordinate > hi[i]:
                hi[i] = coordinate
    return tuple(lo), tuple(hi)


def box_points(lo: IntVec, hi: IntVec) -> Iterable[IntVec]:
    """Iterate all integer points of the closed box ``[lo, hi]``.

    Coordinates iterate in row-major (lexicographic) order.
    """
    if len(lo) != len(hi):
        raise ValueError("box corners have mismatched dimensions")
    ranges = []
    for low, high in zip(lo, hi):
        if low > high:
            return
        ranges.append(range(low, high + 1))
    yield from itertools.product(*ranges)


def minkowski_sum(a: Iterable[IntVec], b: Sequence[IntVec]) -> frozenset[IntVec]:
    """Minkowski sum ``A + B = {x + y : x in A, y in B}``."""
    return frozenset(vadd(x, y) for x in a for y in b)


def difference_set(points: Iterable[IntVec]) -> frozenset[IntVec]:
    """Difference set ``P - P = {x - y : x, y in P}``.

    Two sensors with neighborhood ``N`` placed at ``s`` and ``t`` have
    intersecting interference ranges exactly when ``t - s`` lies in
    ``N - N``; this set is the collision kernel used throughout the
    scheduling core.  ``points`` may be any iterable, including a
    one-shot generator: it is materialized before the double loop.
    """
    point_list = list(points)
    return frozenset(vsub(x, y) for x in point_list for y in point_list)


def translate_set(points: Iterable[IntVec], offset: IntVec) -> frozenset[IntVec]:
    """Translate every point of a set by ``offset``."""
    return frozenset(vadd(p, offset) for p in points)


def rotate90(a: IntVec) -> IntVec:
    """Rotate a 2-D integer vector by 90 degrees counterclockwise."""
    if len(a) != 2:
        raise ValueError(f"rotate90 requires a 2-D vector, got dimension {len(a)}")
    x, y = a
    return (-y, x)


def reflect_x(a: IntVec) -> IntVec:
    """Reflect a 2-D integer vector across the x-axis."""
    if len(a) != 2:
        raise ValueError(f"reflect_x requires a 2-D vector, got dimension {len(a)}")
    x, y = a
    return (x, -y)


def lex_min(points: Iterable[IntVec]) -> IntVec:
    """Lexicographically smallest point of a non-empty collection."""
    return min(points)


def l2_norm(a: IntVec) -> float:
    """Euclidean norm as a float (use :func:`l2_norm_sq` for exactness)."""
    return math.sqrt(l2_norm_sq(a))
