"""Deterministic random number generation shared by simulator and baselines.

All stochastic components of the library (slotted-ALOHA MACs, mobility
models, annealing schedules, random instance generators) accept either an
integer seed or a ready ``random.Random``; this module centralizes the
coercion so experiments are reproducible end to end.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "spawn_rng"]

_DEFAULT_SEED = 0x5EED


def make_rng(seed: int | random.Random | None = None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG, or default.

    Passing ``None`` yields a generator with a fixed library-wide seed so
    that *unseeded* runs are still reproducible (experiments should always
    pass explicit seeds for independence).
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random(_DEFAULT_SEED)
    return random.Random(seed)


def spawn_rng(parent: random.Random, stream: int) -> random.Random:
    """Derive an independent child generator for a numbered sub-stream."""
    return random.Random((parent.getrandbits(48) << 16) ^ stream)
