"""Deterministic random number generation shared by simulator and baselines.

All stochastic components of the library (slotted-ALOHA MACs, mobility
models, annealing schedules, random instance generators) accept either an
integer seed or a ready ``random.Random``; this module centralizes the
coercion so experiments are reproducible end to end.

Two generator families live here:

* :func:`make_rng` / :func:`spawn_rng` — ordinary sequential
  ``random.Random`` streams for code that draws in loop order;
* :class:`StreamRNG` — a *counter-based* generator whose every value is a
  pure function of ``(seed, stream, slot, draw)``.  Nothing is consumed
  and nothing advances, so the value a sensor sees at a given slot does
  not depend on how many other sensors drew before it, on how the slot
  range was chunked into windows, or on which engine backend computed
  it.  This is what makes the vectorized random-MAC simulator path
  (:mod:`repro.engine.randmac`) bit-identical to the scalar one.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence

__all__ = ["make_rng", "spawn_rng", "make_np_rng", "stream_root",
           "label_stream", "StreamRNG", "StreamDraw"]

_DEFAULT_SEED = 0x5EED

_MASK64 = (1 << 64) - 1
#: 2^64 / golden ratio; odd, so multiplication by it is a bijection mod 2^64.
_PHI = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
#: Exact float64 scale turning a 53-bit integer into a uniform in [0, 1).
_INV_2_53 = 2.0 ** -53


def make_rng(seed: int | random.Random | None = None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG, or default.

    Passing ``None`` yields a generator with a fixed library-wide seed so
    that *unseeded* runs are still reproducible (experiments should always
    pass explicit seeds for independence).
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random(_DEFAULT_SEED)
    return random.Random(seed)


def spawn_rng(parent: random.Random, stream: int) -> random.Random:
    """Derive an independent child generator for a numbered sub-stream.

    The child is seeded from a SHA-256 digest of the parent's *full
    generator state* together with the stream number, so distinct stream
    numbers (and distinct parent states) yield uncorrelated children.
    Earlier versions derived the child seed by shifting a parent draw and
    XOR-ing the stream number in, which collides whenever two
    ``(draw, stream)`` pairs alias in the low bits and seeds nearby
    Mersenne states with correlated arithmetic; hashing removes both
    failure modes.

    Spawning is a pure function of ``(parent state, stream)`` — it does
    not advance the parent, so the same parent state and stream number
    always name the same child stream.
    """
    material = repr((parent.getstate(), int(stream))).encode()
    return random.Random(int.from_bytes(hashlib.sha256(material).digest(),
                                        "big"))


def make_np_rng(seed: int | random.Random | None = None):
    """A seeded ``numpy.random.Generator`` from any accepted seed form.

    This is the *only* sanctioned route to numpy randomness — the
    static determinism rule (``repro.analysis``) forbids
    ``numpy.random`` everywhere outside this module, so every numpy
    generator in the library is reproducible from a seed that flows
    through here.  An integer seeds ``default_rng`` directly (so
    callers migrating from ``np.random.default_rng(n)`` keep their
    exact streams); ``None`` uses the library-wide default seed; a
    ``random.Random`` is digested from its state via
    :func:`stream_root` without advancing it.

    Raises:
        ImportError: when numpy is not installed — numpy randomness is
            only for code paths that already require numpy.
    """
    import numpy

    if isinstance(seed, random.Random):
        return numpy.random.default_rng(stream_root(seed))
    if seed is None:
        seed = _DEFAULT_SEED
    return numpy.random.default_rng(seed)


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a bijective avalanche mix on 64-bit words."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * _MIX_A) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX_B) & _MASK64
    return x ^ (x >> 31)


def stream_root(seed: int | random.Random | None = None) -> int:
    """64-bit root key for :class:`StreamRNG` from any accepted seed form.

    Integers are finalized through :func:`_mix64` (a bijection, so
    distinct seeds keep distinct roots); ``None`` uses the library-wide
    default seed; a ``random.Random`` is digested from its state without
    advancing it, so the same generator state always yields the same
    root.
    """
    if isinstance(seed, random.Random):
        digest = hashlib.sha256(repr(seed.getstate()).encode()).digest()
        return int.from_bytes(digest[:8], "big")
    if seed is None:
        seed = _DEFAULT_SEED
    return _mix64(seed)


def label_stream(label: str) -> int:
    """A stable 64-bit stream id for a string label.

    :class:`StreamRNG` keys its streams by integer; callers whose
    streams are naturally *named* (the scenario generators key draws by
    field name, e.g. ``"churn:window"``) hash the name once and use the
    digest as the stream coordinate.  SHA-256-based, so ids are stable
    across processes and Python versions — anything derived from them
    is reproducible from the label alone.
    """
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class StreamRNG:
    """Counter-based RNG: values are pure functions of their coordinates.

    ``uniform(stream, slot, draw)`` hashes ``(root, stream, slot, draw)``
    through three SplitMix64 rounds and maps the top 53 bits to a float
    in ``[0, 1)``.  There is no sequential state: callers may evaluate
    any subset of coordinates in any order (or in bulk, on any engine
    backend) and always observe the same values.  The simulator keys
    ``stream`` by dense sensor id and ``slot`` by time slot, which is
    what makes randomized runs independent of iteration order and shard
    boundaries.

    The bulk kernels in :mod:`repro.engine.randmac` reimplement exactly
    this arithmetic — on ``uint64`` arrays under numpy, and with cached
    per-stream bases in the pure-Python fallback; the equivalence tests
    pin every implementation to this scalar one bit-for-bit.
    """

    __slots__ = ("root",)

    def __init__(self, seed: int | random.Random | None = None):
        self.root = stream_root(seed)

    # -- scalar interface ------------------------------------------------
    def state(self, stream: int, slot: int, draw: int = 0) -> int:
        """The 64-bit hash word at coordinates ``(stream, slot, draw)``."""
        h = _mix64(self.root ^ ((stream * _PHI) & _MASK64))
        h = _mix64(h ^ ((slot * _PHI) & _MASK64))
        return _mix64(h ^ ((draw * _PHI) & _MASK64))

    def uniform(self, stream: int, slot: int, draw: int = 0) -> float:
        """A uniform float in ``[0, 1)`` at the given coordinates."""
        return (self.state(stream, slot, draw) >> 11) * _INV_2_53

    def randrange(self, stream: int, slot: int, n: int, draw: int = 0) -> int:
        """A uniform integer in ``[0, n)`` at the given coordinates.

        Derived from :meth:`uniform` by scaling, so like every counter
        value it is a pure function of ``(root, stream, slot, draw)``.
        The modulo-free construction keeps the tiny bias of ``state % n``
        out (53 bits against any practical ``n``).

        Raises:
            ValueError: when ``n`` is not positive.
        """
        if n <= 0:
            raise ValueError(f"randrange needs a positive bound, got {n}")
        return int(self.uniform(stream, slot, draw) * n)

    def choice(self, stream: int, slot: int, options: Sequence,
               draw: int = 0):
        """A uniform element of ``options`` at the given coordinates."""
        return options[self.randrange(stream, slot, len(options), draw)]

    def draw(self, stream: int, slot: int) -> StreamDraw:
        """A ``random.Random``-like view of one ``(stream, slot)`` cell."""
        return StreamDraw(self, stream, slot)

    def __repr__(self) -> str:
        return f"StreamRNG(root=0x{self.root:016x})"


class StreamDraw(random.Random):
    """One ``(stream, slot)`` counter cell behind the ``random.Random`` API.

    The scalar MAC interface (``wants_to_send``) historically received a
    full ``random.Random``; this adapter keeps that whole surface
    (``randint``, ``choice``, ``uniform``, ... all route through
    ``random()``/``getrandbits()``) while serving every draw from the
    counter stream, bumping the ``draw`` index per call so a protocol
    that draws twice in one slot still sees independent values.  Draw 0
    is the value the vectorized kernels compute, so a protocol that
    draws at most once per slot (every built-in one) matches its bulk
    implementation bit-for-bit.
    """

    def __init__(self, rng: StreamRNG, stream: int, slot: int):
        self._rng = rng
        self._stream = stream
        self._slot = slot
        self._draw = 0
        # The inherited Mersenne state is never read — random() and
        # getrandbits() below feed every derived method — but the base
        # class insists on seeding it.
        super().__init__(0)

    def rebind(self, stream: int, slot: int) -> StreamDraw:
        """Re-point this adapter at another cell and reset the draw index.

        Bulk fallbacks iterate millions of cells; reusing one adapter
        skips ``random.Random.__init__`` (which insists on seeding a
        Mersenne state) per cell.  The adapter is only valid for the
        duration of the ``wants_to_send`` call it is passed to.
        """
        self._stream = stream
        self._slot = slot
        self._draw = 0
        return self

    def random(self) -> float:
        value = self._rng.uniform(self._stream, self._slot, self._draw)
        self._draw += 1
        return value

    def getrandbits(self, k: int) -> int:
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        result = 0
        filled = 0
        while filled < k:
            state = self._rng.state(self._stream, self._slot, self._draw)
            self._draw += 1
            take = min(64, k - filled)
            result |= (state >> (64 - take)) << filled
            filled += take
        return result

    def seed(self, *args, **kwargs) -> None:  # pragma: no cover - base init
        # Called by random.Random.__init__; a counter cell has no
        # reseedable state of its own.
        super().seed(*args, **kwargs)

    def getstate(self):
        raise NotImplementedError("a StreamDraw is a stateless view of "
                                  "one (stream, slot) counter cell")

    def setstate(self, state):
        raise NotImplementedError("a StreamDraw is a stateless view of "
                                  "one (stream, slot) counter cell")
