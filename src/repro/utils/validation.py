"""Argument-validation helpers with consistent error messages.

Small, explicit checks used across the public API so that misuse fails
early with actionable messages instead of deep inside an algorithm.
"""

from __future__ import annotations

from collections.abc import Iterable, Sized

__all__ = [
    "require",
    "require_positive",
    "require_nonnegative",
    "require_dimension",
    "require_nonempty",
    "require_probability",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: int | float, name: str) -> None:
    """Raise unless ``value > 0``."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_nonnegative(value: int | float, name: str) -> None:
    """Raise unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be nonnegative, got {value!r}")


def require_dimension(point: Sized, dimension: int, name: str = "point") -> None:
    """Raise unless ``len(point) == dimension``."""
    if len(point) != dimension:
        raise ValueError(
            f"{name} has dimension {len(point)}, expected {dimension}"
        )


def require_nonempty(items: Iterable, name: str) -> None:
    """Raise unless the iterable has at least one element.

    Only call on re-iterable collections (the check consumes an iterator).
    """
    for _ in items:
        return
    raise ValueError(f"{name} must not be empty")


def require_probability(value: float, name: str) -> None:
    """Raise unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
