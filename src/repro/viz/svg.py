"""Dependency-free SVG writer for the paper's figures.

matplotlib is unavailable in the reproduction environment, so figures are
emitted as standalone SVG documents built from rectangles, circles,
polygons and text.  The canvas uses mathematical orientation (y up); the
writer flips coordinates on output.
"""

from __future__ import annotations

import html
from collections.abc import Sequence

__all__ = ["SvgCanvas"]


class SvgCanvas:
    """Accumulates SVG elements and serializes a complete document.

    Args:
        width, height: viewport size in user units.
        scale: multiplier from model coordinates to user units.
        origin: model coordinates mapped to the canvas center.
    """

    def __init__(self, width: float = 640, height: float = 640,
                 scale: float = 40.0,
                 origin: tuple[float, float] = (0.0, 0.0)):
        self.width = width
        self.height = height
        self.scale = scale
        self.origin = origin
        self._elements: list[str] = []

    # ------------------------------------------------------------------
    def _map(self, x: float, y: float) -> tuple[float, float]:
        cx, cy = self.origin
        return (self.width / 2 + (x - cx) * self.scale,
                self.height / 2 - (y - cy) * self.scale)

    def circle(self, x: float, y: float, radius: float,
               fill: str = "black", stroke: str = "none",
               opacity: float = 1.0) -> None:
        """A circle at model coordinates with radius in model units."""
        px, py = self._map(x, y)
        self._elements.append(
            f'<circle cx="{px:.2f}" cy="{py:.2f}" '
            f'r="{radius * self.scale:.2f}" fill="{fill}" '
            f'stroke="{stroke}" opacity="{opacity:g}"/>')

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "black", width: float = 1.0) -> None:
        """A straight segment between model coordinates."""
        p1 = self._map(x1, y1)
        p2 = self._map(x2, y2)
        self._elements.append(
            f'<line x1="{p1[0]:.2f}" y1="{p1[1]:.2f}" x2="{p2[0]:.2f}" '
            f'y2="{p2[1]:.2f}" stroke="{stroke}" stroke-width="{width:g}"/>')

    def polygon(self, vertices: Sequence[tuple[float, float]],
                fill: str = "none", stroke: str = "black",
                width: float = 1.0, opacity: float = 1.0) -> None:
        """A closed polygon through model-coordinate vertices."""
        points = " ".join(
            "{:.2f},{:.2f}".format(*self._map(x, y)) for x, y in vertices)
        self._elements.append(
            f'<polygon points="{points}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{width:g}" fill-opacity="{opacity:g}"/>')

    def square_cell(self, x: int, y: int, fill: str,
                    opacity: float = 1.0) -> None:
        """Unit square centered on an integer lattice point."""
        self.polygon([(x - 0.5, y - 0.5), (x + 0.5, y - 0.5),
                      (x + 0.5, y + 0.5), (x - 0.5, y + 0.5)],
                     fill=fill, stroke="gray", width=0.5, opacity=opacity)

    def text(self, x: float, y: float, content: str,
             size: float = 0.4, fill: str = "black") -> None:
        """Centered text at model coordinates, size in model units."""
        px, py = self._map(x, y)
        self._elements.append(
            f'<text x="{px:.2f}" y="{py:.2f}" text-anchor="middle" '
            f'dominant-baseline="central" '
            f'font-size="{size * self.scale:.1f}" fill="{fill}" '
            f'font-family="sans-serif">{html.escape(content)}</text>')

    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        """The complete SVG document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:g}" height="{self.height:g}" '
            f'viewBox="0 0 {self.width:g} {self.height:g}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f'  {body}\n</svg>\n')

    def save(self, path: str) -> str:
        """Write the document to ``path`` and return the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_svg())
        return path
