"""ASCII rendering of prototiles, tilings and schedules.

Recreates the look of the paper's figures in plain text: Figure 2's
neighborhoods as cross-marked grids, Figure 3's slot-labeled tiling, and
Figure 5's labeled tetromino columns.  The y-axis points up (row order is
reversed when printing), matching the paper's drawings.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.schedule import Schedule
from repro.tiles.prototile import Prototile
from repro.tiling.base import Tiling
from repro.tiling.multi import MultiTiling
from repro.utils.validation import require

__all__ = [
    "render_prototile",
    "render_schedule",
    "render_tiling",
    "render_multi_tiling",
]

_TILE_LETTERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_prototile(prototile: Prototile, mark: str = "x",
                     origin_mark: str = "O") -> str:
    """Draw a 2-D prototile as a grid of crosses (Figure 2 style).

    The sensor's own position (the origin) is marked distinctly.
    """
    require(prototile.dimension == 2, "ASCII rendering is 2-D only")
    lo, hi = prototile.bounding_box()
    lines = []
    for y in range(hi[1], lo[1] - 1, -1):
        row = []
        for x in range(lo[0], hi[0] + 1):
            if (x, y) == (0, 0):
                row.append(origin_mark)
            elif (x, y) in prototile:
                row.append(mark)
            else:
                row.append(".")
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_schedule(schedule: Schedule, lo: Sequence[int],
                    hi: Sequence[int], one_based: bool = True) -> str:
    """Draw slot numbers over a window (Figure 3 / Figure 5 style).

    Slots print 1-based by default to match the paper's labels.
    """
    require(len(lo) == 2 and len(hi) == 2, "ASCII rendering is 2-D only")
    width = len(str(schedule.num_slots if one_based
                    else schedule.num_slots - 1))
    lines = []
    for y in range(hi[1], lo[1] - 1, -1):
        row = []
        for x in range(lo[0], hi[0] + 1):
            slot = schedule.slot_of((x, y)) + (1 if one_based else 0)
            row.append(str(slot).rjust(width))
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_tiling(tiling: Tiling, lo: Sequence[int],
                  hi: Sequence[int]) -> str:
    """Draw a tiling with one letter per tile instance.

    Tile instances are lettered by the order their translates appear;
    letters repeat cyclically on large windows.
    """
    require(len(lo) == 2 and len(hi) == 2, "ASCII rendering is 2-D only")
    letter_of: dict = {}
    lines = []
    for y in range(hi[1], lo[1] - 1, -1):
        row = []
        for x in range(lo[0], hi[0] + 1):
            translation, _ = tiling.decompose((x, y))
            if translation not in letter_of:
                letter_of[translation] = _TILE_LETTERS[
                    len(letter_of) % len(_TILE_LETTERS)]
            row.append(letter_of[translation])
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_multi_tiling(multi: MultiTiling, lo: Sequence[int],
                        hi: Sequence[int]) -> str:
    """Draw a multi-prototile tiling: digit = prototile, letter = instance.

    Each cell shows the prototile index of its covering tile; distinct
    instances alternate case to make tile boundaries readable.
    """
    require(len(lo) == 2 and len(hi) == 2, "ASCII rendering is 2-D only")
    instance_parity: dict = {}
    lines = []
    for y in range(hi[1], lo[1] - 1, -1):
        row = []
        for x in range(lo[0], hi[0] + 1):
            k, translation, _ = multi.decompose((x, y))
            if translation not in instance_parity:
                instance_parity[translation] = len(instance_parity) % 2
            symbol = str(k) if instance_parity[translation] == 0 else \
                chr(ord("A") + k)
            row.append(symbol)
        lines.append(" ".join(row))
    return "\n".join(lines)
