"""Figure rendering: ASCII art and dependency-free SVG."""

from repro.viz.ascii_art import (
    render_multi_tiling,
    render_prototile,
    render_schedule,
    render_tiling,
)
from repro.viz.figures import (
    FigureArtifact,
    all_figures,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
)
from repro.viz.svg import SvgCanvas

__all__ = [
    "FigureArtifact",
    "SvgCanvas",
    "all_figures",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "render_multi_tiling",
    "render_prototile",
    "render_schedule",
    "render_tiling",
]
