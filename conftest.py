"""Repo-level pytest plumbing: run the suite under an EngineConfig.

``--engine-config=BACKEND[:WORKERS]`` installs a
:class:`repro.api.EngineConfig` as the session default for the whole
test run — the config-driven counterpart of exporting ``REPRO_ENGINE``
/ ``REPRO_ENGINE_WORKERS``.  CI uses it to prove the two configuration
paths agree: one matrix leg runs the tier-1 suite with
``--engine-config=python:2`` and *no* engine env vars set.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--engine-config", default=None, metavar="BACKEND[:WORKERS]",
        help="install a repro.api.EngineConfig default for the whole run, "
             "e.g. 'python:2' (backend auto/numpy/python, optional worker "
             "count); the env-var fallbacks are not consulted for the "
             "fields given")


@pytest.fixture(scope="session", autouse=True)
def _engine_config(request):
    spec = request.config.getoption("--engine-config")
    if not spec:
        yield None
        return
    from repro.api import EngineConfig, use_config
    backend, _, workers = spec.partition(":")
    config = EngineConfig(backend=backend or None,
                          workers=int(workers) if workers else None)
    with use_config(config):
        yield config
